// The balancing algorithm in SPMD message-passing style — the shape of
// the paper's transputer implementations [7, 8] — as a reusable,
// failure-tolerant library routine shared by examples/spmd_balancer,
// bench/fault_sweep and the mp fault tests.
//
// Bulk-synchronous variant: each global step every rank applies its
// local demand, then the machine runs one *deterministic replicated*
// balancing round — every rank allgathers (trigger?, load) pairs, runs
// the same seeded RNG to draw partners for each triggered initiator,
// and computes identical assignments; only the actual packet transfers
// use point-to-point messages.  Replicated deterministic decisions are
// a classic SPMD trick: no coordinator and no races, at the cost of a
// collective per step.
//
// Failure tolerance (mp/fault.hpp):
//   - Crashes: ranks tick a step clock; a rank killed by the fault plan
//     drops out, the crash-aware collectives complete without it, and
//     every survivor sees the same alive mask in the same round, so the
//     replicated decisions stay replicated.  Dead ranks are excluded
//     from triggering, from partner draws (survivors redraw uniformly
//     over the live set) and from transfer flows.  A dead rank's load
//     is recovered from its last journal checkpoint; the drift since
//     that boundary is declared lost.
//   - Message loss: transfer packets carry real load, so the sender
//     debits itself at send time and the receiver credits itself only
//     on arrival; a receiver that times out on an expected transfer
//     declares the planned amount lost.  Total load is therefore
//     conserved modulo *declared* loss under arbitrary drop rates:
//       sum(final) == generated - consumed - declared_lost - crash_lost
//   - Every flow gets a unique tag, so losses cannot cross-match two
//     transfers between the same pair in the same step.
//
// With an inert fault plan the run is bit-identical to the historical
// fault-free example; with a fixed (seed, fault plan) pair the whole
// trace — loads, counters, declared losses — is reproducible.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "mp/communicator.hpp"
#include "workload/trace.hpp"

namespace dlb {

struct SpmdParams {
  double f = 1.2;
  std::uint32_t delta = 2;
  /// Seed of the replicated decision RNG (identical on every rank).
  std::uint64_t decision_seed = 4711;
  /// Deadline for each expected point-to-point transfer.  Generous
  /// relative to in-process delivery (microseconds), so it only expires
  /// for genuinely lost messages or dead partners.
  std::chrono::milliseconds recv_timeout{50};
};

/// Machine-wide outcome of one SPMD run, assembled after the launch
/// from the crash journal, the fault counters and per-rank tallies.
struct SpmdReport {
  std::vector<std::int64_t> final_loads;  // recovered loads, incl. dead
  std::int64_t total_load = 0;
  std::int64_t min_live_load = 0;
  std::int64_t max_live_load = 0;
  std::int64_t generated = 0;
  std::int64_t consumed = 0;
  /// Transfer load declared lost by receivers (drops / timeouts).
  std::int64_t transfer_lost = 0;
  /// Load lost to crash drift (work past the last journal boundary).
  std::int64_t crash_lost = 0;
  std::int64_t rounds_initiated = 0;
  std::int64_t packets_shipped = 0;
  std::uint64_t recv_timeouts = 0;
  std::uint64_t degraded_rounds = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_delayed = 0;
  std::uint32_t ranks_dead = 0;
  /// sum(final) == generated - consumed - transfer_lost - crash_lost
  bool conserved = false;
  /// max/avg over live ranks (1.0 when perfectly balanced).
  double max_over_avg = 0.0;
};

/// Runs the replicated-decision balancer over `trace` on `world`
/// (world.size() must equal trace.processors()).  Install a FaultPlan
/// on the world beforehand to exercise the failure paths.
SpmdReport run_spmd_balancer(World& world, const Trace& trace,
                             const SpmdParams& params);

}  // namespace dlb
