// On-disk LoadJournal for real processes.
//
// The in-process runtimes keep the crash journal in shared memory
// (core/checkpoint.hpp's LoadJournal): a crashing *thread* can hand its
// drift to the survivors directly.  A crashing *process* cannot — its
// memory vanishes with it — so the socket runtime mirrors the journal
// to a per-rank file, one complete text line per observed step,
// written with write(2) at observe time.  Process death (SIGKILL) is
// not machine death: bytes handed to the kernel survive in the page
// cache regardless of what happens to the writer, so the journal is
// exactly as durable as the failure model being tested.
//
// Format (line-oriented, locale-independent):
//   dlb-journal 1 <rank> <interval>
//   o <step> <load> <generated> <consumed> <declared_lost>
//   ...
// Counters are cumulative, so any single line is a complete snapshot;
// recovery needs only the *last complete* line (a torn final line —
// possible only if the write(2) itself was interrupted by death — is
// detected by the missing newline and ignored).  Recovery mirrors
// LoadJournal semantics: the recovered load is the last line at a
// checkpoint boundary (step % interval == 0), and the drift between it
// and the last line of all is the crash loss.  declared_lost rides in
// every line so a dead receiver's loss declarations are not lost with
// it — without that, conservation could not close over a crashed rank
// that had previously declared a timed-out transfer.
#pragma once

#include <cstdint>
#include <string>

namespace dlb {

/// Append-only journal writer owned by one rank's process.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Creates/truncates `path` and writes the header.
  void open(const std::string& path, int rank, std::uint32_t interval);
  bool is_open() const { return fd_ >= 0; }

  /// Appends one observation line (cumulative counters) with a single
  /// write(2) call.
  void record(std::uint32_t step, std::int64_t load, std::int64_t generated,
              std::int64_t consumed, std::int64_t declared_lost);

  void close();

 private:
  int fd_ = -1;
};

/// Everything recoverable from a rank's journal file.
struct JournalRecovery {
  bool valid = false;        // header parsed and >= 0 complete lines
  int rank = -1;
  std::uint32_t interval = 1;
  std::uint32_t last_step = 0;      // step of the last complete line
  std::int64_t shadow_load = 0;     // last complete line (exact at death)
  std::int64_t committed_load = 0;  // last checkpoint-boundary line
  std::int64_t generated = 0;       // cumulative, crash-exact
  std::int64_t consumed = 0;
  std::int64_t declared_lost = 0;   // losses this rank declared before dying

  /// Work destroyed by the crash: drift past the last checkpoint
  /// boundary (may be negative if load shrank since).
  std::int64_t crash_loss() const { return shadow_load - committed_load; }
};

/// Parses `path`, ignoring a torn trailing line.  `valid` is false when
/// the file is missing or its header is malformed.
JournalRecovery recover_journal(const std::string& path);

/// Canonical per-rank journal path inside a run directory.
std::string journal_path(const std::string& dir, int rank);

}  // namespace dlb
