// Small-buffer message payload with pooled spill storage.
//
// The paper's protocol messages carry a handful of 64-bit words
// (Invite/Accept/Assign are 1–3 words), yet MpMessage used to hold a
// std::vector — one heap allocation per send and one free per receive,
// pure allocator overhead on the transport hot path.  MpPayload stores
// up to kInlineWords words inline (sizeof(MpMessage) is exactly one
// cache line) and spills larger payloads into PayloadPool buffers that
// are recycled through a free list instead of returned to the heap, so
// in steady state send/recv/drain never touch the allocator — inline
// payloads by construction, oversized ones after the pool has warmed to
// the live high-water count (DESIGN.md §11).
//
// Ownership: a spill buffer carries a back-pointer to the pool that
// issued it, so a payload can be destroyed on any thread after the
// issuing Comm went out of scope — the buffer finds its way home (the
// pool outlives all payloads, being owned by the World).  A payload
// built without a pool (e.g. a test literal wider than the inline
// capacity) spills to a plain heap buffer and frees it on drop.
//
// The pool is mutex-guarded: spills are the rare path (no production
// message exceeds the inline capacity), and correctness beats a
// lock-free list nobody contends on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <new>
#include <vector>

#include "support/check.hpp"

namespace dlb {

class PayloadPool;

namespace detail {
/// Header of a spilled payload buffer; the words follow it in the same
/// allocation (8-aligned: the header is a multiple of 8 bytes).
struct SpillBuf {
  PayloadPool* pool;       // home free list; nullptr = plain heap
  std::uint32_t capacity;  // in words
  SpillBuf* next;          // free-list link (meaningful only when free)

  std::int64_t* words() { return reinterpret_cast<std::int64_t*>(this + 1); }
  const std::int64_t* words() const {
    return reinterpret_cast<const std::int64_t*>(this + 1);
  }

  static SpillBuf* make(std::uint32_t capacity, PayloadPool* pool) {
    void* raw =
        ::operator new(sizeof(SpillBuf) + capacity * sizeof(std::int64_t));
    SpillBuf* buf = static_cast<SpillBuf*>(raw);
    buf->pool = pool;
    buf->capacity = capacity;
    buf->next = nullptr;
    return buf;
  }
  static void free_plain(SpillBuf* buf) { ::operator delete(buf); }
};
}  // namespace detail

/// Free list of spill buffers, owned by the transport (mp::World).
class PayloadPool {
 public:
  PayloadPool() = default;
  ~PayloadPool() {
    detail::SpillBuf* buf = free_;
    while (buf != nullptr) {
      detail::SpillBuf* next = buf->next;
      detail::SpillBuf::free_plain(buf);
      buf = next;
    }
  }
  PayloadPool(const PayloadPool&) = delete;
  PayloadPool& operator=(const PayloadPool&) = delete;

  /// Reuse accounting, for tests and the pool-health gauge.
  struct Stats {
    std::uint64_t created = 0;   // buffers newly heap-allocated
    std::uint64_t reused = 0;    // acquisitions served from the free list
    std::uint64_t returned = 0;  // buffers released back to the list
  };
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  /// Buffers currently parked on the free list.
  std::size_t free_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (detail::SpillBuf* b = free_; b != nullptr; b = b->next) ++n;
    return n;
  }

 private:
  friend class MpPayload;

  detail::SpillBuf* acquire(std::uint32_t min_words) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      detail::SpillBuf** link = &free_;
      while (*link != nullptr) {
        if ((*link)->capacity >= min_words) {
          detail::SpillBuf* buf = *link;
          *link = buf->next;
          buf->next = nullptr;
          ++stats_.reused;
          return buf;
        }
        link = &(*link)->next;
      }
      ++stats_.created;
    }
    std::uint32_t capacity = 8;
    while (capacity < min_words) capacity *= 2;
    return detail::SpillBuf::make(capacity, this);
  }

  void release(detail::SpillBuf* buf) {
    std::lock_guard<std::mutex> lock(mutex_);
    buf->next = free_;
    free_ = buf;
    ++stats_.returned;
  }

  mutable std::mutex mutex_;
  detail::SpillBuf* free_ = nullptr;
  Stats stats_;
};

/// The payload of one point-to-point message: a short array of 64-bit
/// words, inline up to kInlineWords, pooled-spill beyond.
class MpPayload {
 public:
  static constexpr std::uint32_t kInlineWords = 6;

  MpPayload() = default;
  MpPayload(std::initializer_list<std::int64_t> words) {
    assign(words.begin(), words.size(), nullptr);
  }
  MpPayload(const std::int64_t* words, std::size_t count,
            PayloadPool* pool = nullptr) {
    assign(words, count, pool);
  }

  MpPayload(const MpPayload& o) { assign(o.data(), o.size(), o.home_pool()); }
  MpPayload& operator=(const MpPayload& o) {
    if (this != &o) assign(o.data(), o.size(), o.home_pool());
    return *this;
  }

  MpPayload(MpPayload&& o) noexcept : size_(o.size_), spilled_(o.spilled_) {
    u_ = o.u_;
    o.size_ = 0;
    o.spilled_ = 0;
  }
  MpPayload& operator=(MpPayload&& o) noexcept {
    if (this != &o) {
      drop();
      size_ = o.size_;
      spilled_ = o.spilled_;
      u_ = o.u_;
      o.size_ = 0;
      o.spilled_ = 0;
    }
    return *this;
  }

  ~MpPayload() { drop(); }

  /// Replaces the contents.  Reuses the current storage when it fits
  /// (regardless of `pool`); otherwise draws a spill buffer from `pool`
  /// (plain heap when null).  The buffer returns to *its own* pool on
  /// drop, so mixing pools across assigns is safe.
  void assign(const std::int64_t* words, std::size_t count,
              PayloadPool* pool) {
    DLB_REQUIRE(count <= UINT32_MAX, "payload too large");
    const auto n = static_cast<std::uint32_t>(count);
    if (n > capacity()) {
      drop();
      u_.spill = pool != nullptr
                     ? pool->acquire(n)
                     : [&] {
                         std::uint32_t cap = 8;
                         while (cap < n) cap *= 2;
                         return detail::SpillBuf::make(cap, nullptr);
                       }();
      spilled_ = 1;
    }
    std::int64_t* dst = mutable_data();
    for (std::uint32_t i = 0; i < n; ++i) dst[i] = words[i];
    size_ = n;
  }

  /// Empties the payload but keeps the storage (spill included) for the
  /// next assign — the in-place reuse path for recycled message slots.
  void clear() { size_ = 0; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint32_t capacity() const {
    return spilled_ ? u_.spill->capacity : kInlineWords;
  }
  bool spilled() const { return spilled_ != 0; }

  const std::int64_t* data() const {
    return spilled_ ? u_.spill->words() : u_.inline_words;
  }
  std::int64_t operator[](std::size_t i) const {
    DLB_REQUIRE(i < size_, "payload index out of range");
    return data()[i];
  }
  const std::int64_t* begin() const { return data(); }
  const std::int64_t* end() const { return data() + size_; }

 private:
  PayloadPool* home_pool() const { return spilled_ ? u_.spill->pool : nullptr; }
  std::int64_t* mutable_data() {
    return spilled_ ? u_.spill->words() : u_.inline_words;
  }
  void drop() {
    if (spilled_) {
      if (u_.spill->pool != nullptr)
        u_.spill->pool->release(u_.spill);
      else
        detail::SpillBuf::free_plain(u_.spill);
      spilled_ = 0;
    }
    size_ = 0;
  }

  std::uint32_t size_ = 0;
  std::uint32_t spilled_ = 0;
  union Storage {
    std::int64_t inline_words[kInlineWords];
    detail::SpillBuf* spill;
  } u_{};
};

inline bool operator==(const MpPayload& a, const MpPayload& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a.data()[i] != b.data()[i]) return false;
  return true;
}
inline bool operator==(const MpPayload& a,
                       const std::vector<std::int64_t>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a.data()[i] != b[i]) return false;
  return true;
}
inline bool operator==(const std::vector<std::int64_t>& a,
                       const MpPayload& b) {
  return b == a;
}

static_assert(sizeof(MpPayload) == 56, "payload should stay compact");

}  // namespace dlb
