// Real OS processes for the socket transport: fork-based rank launch,
// exit-code collection, kill, respawn, and orphan reaping.
//
// The in-process World gives every rank a thread; ProcessGroup gives
// every rank a forked child, which is what makes crash testing *real*:
// a SIGKILLed rank's kernel closes its sockets (peers see EOF), its
// memory vanishes, and the only state that survives is what it wrote
// to disk — exactly the failure model the journal-recovery path claims
// to handle.
//
// The parent never shares the children's address space after fork: a
// child runs `body(rank)` and leaves through _exit (no destructors, no
// atexit — the parent's stdio/gtest state must not be flushed twice).
// The destructor reaps every child still running (SIGKILL + waitpid),
// so a throwing test cannot leak orphans.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <functional>
#include <string>
#include <vector>

namespace dlb {

class ProcessGroup {
 public:
  /// Forks `ranks` children; child r runs `body(r)` and _exits with its
  /// return value (clamped to 0..255).  The parent returns immediately.
  static ProcessGroup spawn(int ranks, const std::function<int(int)>& body);

  /// Creates a fresh, unique rendezvous directory under $TMPDIR (or
  /// /tmp) — one per run, so concurrent CI jobs never collide.
  static std::string make_rendezvous_dir();
  /// Best-effort recursive removal of a rendezvous dir (files + dir).
  static void remove_rendezvous_dir(const std::string& dir);

  ProcessGroup(ProcessGroup&&) noexcept = default;
  ProcessGroup& operator=(ProcessGroup&&) noexcept = default;
  ProcessGroup(const ProcessGroup&) = delete;
  ProcessGroup& operator=(const ProcessGroup&) = delete;
  ~ProcessGroup();

  int size() const { return static_cast<int>(pids_.size()); }

  /// Waits (monotonic deadline) until every child has exited.  Returns
  /// false on timeout with stragglers still running (not killed).
  bool wait_all(std::chrono::milliseconds timeout);

  /// True once `rank`'s child has been reaped.
  bool finished(int rank) const;
  /// Exited normally (vs. killed by a signal).  Valid once finished.
  bool exited(int rank) const;
  /// Exit code for a normal exit; -1 otherwise.
  int exit_code(int rank) const;
  /// Terminating signal for a signalled death; 0 otherwise.
  int term_signal(int rank) const;

  /// Sends `sig` (default SIGKILL) to a still-running rank.
  void kill_rank(int rank, int sig);

  /// Re-forks rank `rank`'s slot with a new body (crash recovery);
  /// the previous child must already be finished.
  void respawn(int rank, const std::function<int(int)>& body);

 private:
  ProcessGroup() = default;
  static pid_t fork_rank(int rank, const std::function<int(int)>& body);
  void reap(int rank, int options);

  std::vector<pid_t> pids_;
  std::vector<int> status_;    // raw waitpid status
  std::vector<bool> done_;
};

}  // namespace dlb
