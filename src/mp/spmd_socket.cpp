#include "mp/spmd_socket.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>

#include "mp/clock_sync.hpp"
#include "mp/fault_transport.hpp"
#include "mp/journal_io.hpp"
#include "mp/process_group.hpp"
#include "mp/remote_comm.hpp"
#include "mp/socket_transport.hpp"
#include "mp/spmd_rank.hpp"
#include "obs/merge.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

namespace dlb {

namespace {

std::string report_path(const std::string& dir, int rank) {
  return dir + "/report." + std::to_string(rank);
}

std::string trace_path(const std::string& dir, int rank) {
  return dir + "/trace." + std::to_string(rank);
}

std::string metrics_path(const std::string& dir, int rank) {
  return dir + "/metrics." + std::to_string(rank);
}

bool obs_enabled(const SocketRunOptions& opts) {
  return opts.collect_obs || !opts.trace_out.empty() ||
         !opts.metrics_out.empty();
}

/// Write-then-rename, like every other file the ranks publish: the
/// parent (or a post-mortem reader) never sees a torn file.
template <typename Body>
void write_file_atomic(const std::string& path, Body&& body) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    body(out);
  }
  DLB_ENSURE(std::rename(tmp.c_str(), path.c_str()) == 0,
             "cannot publish " + path);
}

std::string recovered_path(const std::string& dir, int rank) {
  return dir + "/recovered." + std::to_string(rank);
}

/// Everything a cleanly-exiting rank hands back to the parent.
struct RankReport {
  bool valid = false;
  std::int64_t load = 0;
  std::int64_t generated = 0;
  std::int64_t consumed = 0;
  std::int64_t declared = 0;
  std::int64_t ops = 0;
  std::int64_t moved = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t degraded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t retries = 0;
  std::uint64_t corrupt = 0;
};

/// Key-value lines, written to a temp name and renamed so the parent
/// never reads a torn report.
void write_report(const std::string& dir, int rank, std::int64_t load,
                  const SocketComm& comm, const RankTallies& tally,
                  const FaultStats& stats, const SocketTransport& transport) {
  const std::string path = report_path(dir, rank);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    // No generated/consumed here: the parent reads those from the
    // journal mirror, which is the authority for both clean and dead
    // ranks.
    out << "dlb-rank-report 1\n"
        << "load " << load << "\n"
        << "declared " << comm.declared_lost() << "\n"
        << "ops " << tally.rounds_initiated << "\n"
        << "moved " << tally.packets_moved << "\n"
        << "timeouts " << tally.recv_timeouts << "\n"
        << "degraded " << tally.degraded_rounds << "\n"
        << "dropped " << stats.messages_dropped << "\n"
        << "duplicated " << stats.messages_duplicated << "\n"
        << "delayed " << stats.messages_delayed << "\n"
        << "retries " << transport.connect_retries() << "\n"
        << "corrupt " << transport.frames_corrupt() << "\n";
  }
  DLB_ENSURE(std::rename(tmp.c_str(), path.c_str()) == 0,
             "cannot publish rank report");
}

std::optional<std::pair<std::string, std::int64_t>> parse_kv(
    const std::string& line) {
  std::istringstream ls(line);
  std::string key;
  std::int64_t value = 0;
  if (!(ls >> key >> value)) return std::nullopt;
  return std::make_pair(key, value);
}

RankReport read_report(const std::string& dir, int rank) {
  RankReport rep;
  std::ifstream in(report_path(dir, rank));
  if (!in.is_open()) return rep;
  std::string line;
  if (!std::getline(in, line) || line.rfind("dlb-rank-report 1", 0) != 0)
    return rep;
  rep.valid = true;
  while (std::getline(in, line)) {
    const auto kv = parse_kv(line);
    if (!kv) continue;
    const std::int64_t v = kv->second;
    if (kv->first == "load") rep.load = v;
    else if (kv->first == "generated") rep.generated = v;
    else if (kv->first == "consumed") rep.consumed = v;
    else if (kv->first == "declared") rep.declared = v;
    else if (kv->first == "ops") rep.ops = v;
    else if (kv->first == "moved") rep.moved = v;
    else if (kv->first == "timeouts") rep.timeouts = static_cast<std::uint64_t>(v);
    else if (kv->first == "degraded") rep.degraded = static_cast<std::uint64_t>(v);
    else if (kv->first == "dropped") rep.dropped = static_cast<std::uint64_t>(v);
    else if (kv->first == "duplicated") rep.duplicated = static_cast<std::uint64_t>(v);
    else if (kv->first == "delayed") rep.delayed = static_cast<std::uint64_t>(v);
    else if (kv->first == "retries") rep.retries = static_cast<std::uint64_t>(v);
    else if (kv->first == "corrupt") rep.corrupt = static_cast<std::uint64_t>(v);
  }
  return rep;
}

/// The forked rank: transport stack, shared balancer body, report.
int child_rank(int rank, const Trace& trace, const SocketRunOptions& opts,
               const std::string& dir) {
  // Rank-local observability, attached before any traffic so both ends
  // of every link count flow sequences from zero.  Declared ahead of
  // the transport: the export lambdas must outlive it.
  const bool obs_on = obs_enabled(opts);
  std::optional<obs::MetricsRegistry> reg;
  std::optional<obs::TraceBuffer> tbuf;
  if (obs_on) {
    reg.emplace();
    tbuf.emplace(std::size_t{1} << 15);
  }

  SocketOptions so;
  so.dir = dir;
  so.tcp = opts.tcp;
  so.heartbeat = opts.heartbeat;
  so.suspect_after = opts.suspect_after;
  so.connect_timeout = opts.connect_timeout;
  SocketTransport socket(rank, opts.ranks, so);
  if (obs_on) socket.attach_obs(SocketObs{&*tbuf, &*reg});

  // Per-process fault accounting (the parent sums the reports).
  std::mutex stats_mutex;
  FaultStats stats;
  std::optional<FaultyTransport> faulty;
  if (opts.plan.enabled())
    faulty.emplace(socket, opts.plan,
                   FaultSink{&stats_mutex, &stats, nullptr, nullptr, nullptr,
                             nullptr});
  Transport& transport =
      faulty ? static_cast<Transport&>(*faulty) : socket;

  // Clock-sync against rank 0 right after the mesh completes — before
  // the first tick, so no scheduled kill can strand the exchange.
  std::int64_t clock_offset = 0;
  if (obs_on) clock_offset = sync_clocks(transport, *tbuf).offset_ns;

  const auto flush_metrics = [&] {
    if (!reg) return;
    write_file_atomic(metrics_path(dir, rank),
                      [&](std::ostream& os) { reg->write_state(os); });
  };
  const auto flush_trace = [&] {
    if (!tbuf) return;
    write_file_atomic(trace_path(dir, rank), [&](std::ostream& os) {
      obs::write_rank_trace(os, *tbuf, rank, clock_offset);
    });
  };

  SocketCommConfig cc;
  cc.plan = opts.plan;
  cc.journal_path = journal_path(dir, rank);
  if (obs_on) {
    cc.trace = &*tbuf;
    // Durable metrics ride alongside the journal: deaths happen at the
    // next tick, *before* any step traffic, so the last per-journal
    // flush already covers every message a killed rank ever sent and
    // post-crash aggregation closes exactly.
    cc.on_journal = flush_metrics;
    cc.on_crash = [&](std::uint32_t) {
      flush_metrics();
      flush_trace();
    };
  }
  SocketComm comm(transport, cc);

  RankTallies tally;
  std::int64_t final_load = 0;
  {
    // The shared body tracks load internally; recompute the final load
    // from the journal mirror (last line == final state) to avoid
    // widening the body's interface for one caller.
    spmd_balance_rank(comm, trace, opts.params, tally);
    const JournalRecovery rec = recover_journal(journal_path(dir, rank));
    final_load = rec.valid ? rec.shadow_load : 0;
  }
  if (faulty) faulty->flush();
  if (obs_on) {
    // Rank-local run tallies as gauges (gauges sum across the merge,
    // so the aggregate spmd.final_load is the machine's total load).
    reg->gauge("spmd.final_load").set(final_load);
    reg->gauge("spmd.rounds_initiated").set(tally.rounds_initiated);
    reg->gauge("spmd.packets_moved").set(tally.packets_moved);
    reg->gauge("spmd.recv_timeouts")
        .set(static_cast<std::int64_t>(tally.recv_timeouts));
    reg->gauge("spmd.declared_lost").set(comm.declared_lost());
    flush_metrics();
    flush_trace();
  }
  write_report(dir, rank, final_load, comm, tally, stats, socket);
  comm.close();
  return 0;
}

void write_recovered(const std::string& dir, int rank,
                     const JournalRecovery& rec) {
  const std::string path = recovered_path(dir, rank);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    out << "dlb-rank-recovered 1\n"
        << "load " << rec.committed_load << "\n"
        << "step " << rec.last_step << "\n"
        << "declared " << rec.declared_lost << "\n";
  }
  DLB_ENSURE(std::rename(tmp.c_str(), path.c_str()) == 0,
             "cannot publish recovery report");
}

std::optional<std::int64_t> read_recovered_load(const std::string& dir,
                                                int rank) {
  std::ifstream in(recovered_path(dir, rank));
  if (!in.is_open()) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line.rfind("dlb-rank-recovered 1", 0) != 0)
    return std::nullopt;
  while (std::getline(in, line)) {
    const auto kv = parse_kv(line);
    if (kv && kv->first == "load") return kv->second;
  }
  return std::nullopt;
}

}  // namespace

SocketRunResult run_spmd_balancer_socket(const Trace& trace,
                                         const SocketRunOptions& opts) {
  const int n = opts.ranks;
  DLB_REQUIRE(n >= 1, "socket run needs at least one rank");
  DLB_REQUIRE(trace.processors() == static_cast<std::uint32_t>(n),
              "trace size must match the rank count");
  DLB_REQUIRE(opts.params.f > 1.0, "spmd balancer requires f > 1");
  DLB_REQUIRE(opts.params.delta >= 1, "delta must be >= 1");
  DLB_REQUIRE(opts.plan.journal_interval >= 1,
              "journal interval must be >= 1");
  for (const CrashEvent& c : opts.plan.crashes)
    DLB_REQUIRE(c.rank >= 0 && c.rank < n, "crash rank out of range");

  SocketRunResult res;
  res.dir = ProcessGroup::make_rendezvous_dir();
  res.exit_codes.assign(static_cast<std::size_t>(n), 0);
  res.killed.assign(static_cast<std::size_t>(n), 0);
  res.restarted.assign(static_cast<std::size_t>(n), 0);
  res.recovered_loads.assign(static_cast<std::size_t>(n), 0);

  ProcessGroup group = ProcessGroup::spawn(n, [&](int rank) {
    return child_rank(rank, trace, opts, res.dir);
  });
  DLB_ENSURE(group.wait_all(opts.run_timeout),
             "socket run timed out (rendezvous dir kept for post-mortem)");

  bool unexpected = false;
  for (int r = 0; r < n; ++r) {
    const auto s = static_cast<std::size_t>(r);
    if (group.exited(r)) {
      res.exit_codes[s] = group.exit_code(r);
      if (res.exit_codes[s] != 0) unexpected = true;
    } else {
      res.killed[s] = 1;
      res.exit_codes[s] = -group.term_signal(r);
    }
  }

  // Restart: re-fork each killed rank; the fresh process replays the
  // durable journal and publishes what it recovered.
  if (opts.restart_dead) {
    bool any = false;
    for (int r = 0; r < n; ++r) {
      if (!res.killed[static_cast<std::size_t>(r)]) continue;
      group.respawn(r, [&](int rank) {
        const JournalRecovery rec =
            recover_journal(journal_path(res.dir, rank));
        if (!rec.valid) return 3;
        write_recovered(res.dir, rank, rec);
        return 0;
      });
      res.restarted[static_cast<std::size_t>(r)] = 1;
      any = true;
    }
    if (any)
      DLB_ENSURE(group.wait_all(opts.run_timeout),
                 "journal-replay restart timed out");
    for (int r = 0; r < n; ++r) {
      const auto s = static_cast<std::size_t>(r);
      if (!res.restarted[s]) continue;
      if (const auto load = read_recovered_load(res.dir, r))
        res.recovered_loads[s] = *load;
      else
        unexpected = true;
    }
  }

  // Assemble the machine-wide report: report files for clean ranks,
  // journal recovery for killed ones — the same ledger the in-process
  // runner builds from shared memory.
  SpmdReport& report = res.report;
  report.final_loads.assign(static_cast<std::size_t>(n), 0);
  bool first_live = true;
  std::int64_t live_total = 0;
  int live_ranks = 0;
  std::int64_t declared_total = 0;
  for (int r = 0; r < n; ++r) {
    const auto s = static_cast<std::size_t>(r);
    // Cumulative generated/consumed always come from the journal: they
    // are exact for clean ranks (final line) and crash-exact for dead
    // ones (deaths happen at tick, before the step mutates anything).
    const JournalRecovery rec = recover_journal(journal_path(res.dir, r));
    if (rec.valid) {
      report.generated += rec.generated;
      report.consumed += rec.consumed;
    }
    if (res.killed[s]) {
      report.final_loads[s] = rec.valid ? rec.committed_load : 0;
      report.crash_lost += rec.valid ? rec.crash_loss() : 0;
      declared_total += rec.valid ? rec.declared_lost : 0;
      ++report.ranks_dead;
    } else {
      const RankReport rep = read_report(res.dir, r);
      if (!rep.valid) {
        unexpected = true;
        continue;
      }
      report.final_loads[s] = rep.load;
      declared_total += rep.declared;
      report.rounds_initiated += rep.ops;
      report.packets_shipped += rep.moved;
      report.recv_timeouts += rep.timeouts;
      report.degraded_rounds = std::max(report.degraded_rounds, rep.degraded);
      report.messages_dropped += rep.dropped;
      report.messages_duplicated += rep.duplicated;
      report.messages_delayed += rep.delayed;
      res.transport_retries += rep.retries;
      const std::int64_t l = rep.load;
      report.min_live_load = first_live ? l : std::min(report.min_live_load, l);
      report.max_live_load = first_live ? l : std::max(report.max_live_load, l);
      first_live = false;
      live_total += l;
      ++live_ranks;
    }
    report.total_load += report.final_loads[s];
  }
  report.transfer_lost = declared_total;
  report.conserved =
      report.total_load == report.generated - report.consumed -
                               report.transfer_lost - report.crash_lost;
  if (live_ranks > 0 && live_total > 0) {
    const double avg =
        static_cast<double>(live_total) / static_cast<double>(live_ranks);
    report.max_over_avg = static_cast<double>(report.max_live_load) / avg;
  }

  // Fold the per-rank observability exports into one machine view:
  // metrics merged twice (once under a "rank<r>." prefix, once into
  // the unprefixed aggregate), traces stitched into a single Perfetto
  // file with per-rank process tracks and cross-rank flow arcs.
  if (obs_enabled(opts)) {
    obs::MetricsRegistry merged;
    obs::TraceMerger merger;
    for (int r = 0; r < n; ++r) {
      // A rank killed before its first flush leaves no files; the
      // survivors' view still merges.
      std::ifstream in(metrics_path(res.dir, r));
      if (in.is_open()) {
        std::stringstream buf;
        buf << in.rdbuf();
        std::istringstream per_rank(buf.str());
        obs::merge_state(per_rank, merged,
                         "rank" + std::to_string(r) + ".");
        std::istringstream aggregate(buf.str());
        obs::merge_state(aggregate, merged);
      }
      if (std::ifstream(trace_path(res.dir, r)).is_open())
        merger.add_rank_file(trace_path(res.dir, r));
    }
    res.merged_metrics = merged.snapshot();
    res.matched_flow_pairs = merger.matched_flows().size();
    if (!opts.metrics_out.empty())
      write_file_atomic(opts.metrics_out, [&](std::ostream& os) {
        res.merged_metrics.write_json(os);
      });
    if (!opts.trace_out.empty())
      write_file_atomic(opts.trace_out, [&](std::ostream& os) {
        merger.write_chrome_json(os);
      });
  }

  if (!unexpected) ProcessGroup::remove_rendezvous_dir(res.dir);
  return res;
}

}  // namespace dlb
