// The SPMD communicator for real processes: the same programming
// surface as mp/communicator.hpp's Comm (send / recv_for / crash-aware
// collectives / tick / journal / declare_lost), implemented over the
// Transport seam instead of the in-process World.
//
// Collectives are peer-to-peer: each round every rank sends
// {round, value} to every peer it believes alive (on a reserved tag,
// so the fault decorator never dices them — the control plane is
// modelled as reliable, like the in-process collectives) and gathers
// until every rank is either heard from or proven down.  Two details
// make this exact rather than merely likely:
//
//   1. Drain-before-verdict.  A peer is resolved as dead only after
//      the inbox has been drained non-blockingly.  Stream sockets
//      deliver EOF *after* every byte the peer sent, and the transport
//      decodes a connection's remaining bytes before marking it down,
//      so once peer_state says Dead, any round message the peer ever
//      sent is already queued.  Every survivor therefore reaches the
//      same verdict for the same round — the alive masks agree, and
//      the replicated decision streams stay replicated.
//
//   2. One-round lookahead.  A fast peer can finish our round (it has
//      our contribution) and send round r+1 while we still wait on a
//      slower rank's r.  Such messages are stashed, not discarded — a
//      peer can never be MORE than one round ahead, because finishing
//      r+1 would need our r+1 contribution, which we have not sent.
//
// Scheduled crashes are real: tick() checks the fault plan and kills
// its own process with SIGKILL — no goodbye, no flush, no destructor.
// Deaths happen at the tick, before the step's collectives, so every
// survivor observes the death before any step-t traffic from the dead
// rank; combined with (1) this keeps the conservation ledger exact
// under kills (see mp/spmd_balance.hpp).  The journal mirror
// (mp/journal_io.hpp) is written per step, so everything the rank had
// done through its last completed step survives on disk.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "mp/communicator.hpp"  // GatherResult
#include "mp/fault.hpp"
#include "mp/journal_io.hpp"
#include "mp/transport.hpp"
#include "obs/trace.hpp"

namespace dlb {

struct SocketCommConfig {
  /// Crash schedule (consulted at tick; drop/dup/delay live in the
  /// FaultyTransport decorator, not here).
  FaultPlan plan;
  /// Per-rank journal mirror; empty disables persistence.
  std::string journal_path;
  /// Gather poll slice: how long one blocking wait inside a collective
  /// lasts before liveness is re-checked.
  std::chrono::milliseconds gather_slice{10};
  /// Optional per-rank trace buffer: tick() records a "step" instant,
  /// and a scheduled crash records a "crash" instant before the
  /// SIGKILL.
  obs::TraceBuffer* trace = nullptr;
  /// Called after every journal record — the hook the obs export uses
  /// to flush a durable metrics snapshot next to the journal, so a
  /// rank killed later still contributes everything through its last
  /// completed step to post-crash aggregation.
  std::function<void()> on_journal;
  /// Called right before a scheduled SIGKILL (after the "crash"
  /// instant is recorded): last chance to hand rank-local obs state to
  /// write(2).  Must not assume it ever runs — a real crash would not
  /// call it either; the per-journal flush is the durability story.
  std::function<void(std::uint32_t step)> on_crash;
};

class SocketComm {
 public:
  /// `transport` must outlive the communicator.
  SocketComm(Transport& transport, SocketCommConfig config);

  int rank() const { return transport_->rank(); }
  int size() const { return transport_->size(); }

  void send(int dest, int tag, std::initializer_list<std::int64_t> words) {
    send(dest, tag, words.begin(), words.size());
  }
  void send(int dest, int tag, const std::int64_t* words, std::size_t count);
  MpMessage recv(int source = -1, int tag = -1);
  std::optional<MpMessage> try_recv(int source = -1, int tag = -1);
  std::optional<MpMessage> recv_for(int source, int tag,
                                    std::chrono::milliseconds timeout);

  void barrier();
  bool barrier_checked();
  std::int64_t broadcast(std::int64_t value, int root);
  std::int64_t allreduce_sum(std::int64_t value);
  std::int64_t allreduce_min(std::int64_t value);
  std::int64_t allreduce_max(std::int64_t value);
  std::vector<std::int64_t> allgather(std::int64_t value);
  GatherResult allgather_checked(std::int64_t value);
  void allgather_checked(std::int64_t value, GatherResult& out);

  /// Advances the step clock; a scheduled crash is a real SIGKILL of
  /// this process (never returns in that case).
  void tick();
  std::uint32_t step() const { return step_; }

  /// Mirrors the in-process journal: one durable line per step.
  void journal(std::int64_t load, std::int64_t generated = 0,
               std::int64_t consumed = 0);

  /// Loss this rank has declared (rides in every journal line so it
  /// survives this process's death).
  void declare_lost(std::int64_t amount) { declared_lost_ += amount; }
  std::int64_t declared_lost() const { return declared_lost_; }

  bool rank_alive(int rank) const {
    return transport_->peer_state(rank) == PeerState::Alive;
  }

  std::uint64_t collective_rounds() const { return round_; }

  /// Clean shutdown: announces termination (Goodbye) through the
  /// transport.  A crash is the absence of this call.
  void close();

 private:
  /// Reserved control-plane tag for gather rounds (above the fault
  /// decorator's dice floor).
  static constexpr int kTagGather = Transport::kReservedTagFloor + 1;

  struct PendingRound {
    std::int64_t round = 0;
    std::int64_t value = 0;
    bool armed = false;
  };

  void gather_into(std::int64_t value, GatherResult& out);
  /// Routes one inbound gather message to the current round or the
  /// one-round-lookahead stash; returns true if it resolved a rank.
  bool absorb(const MpMessage& msg, GatherResult& out);

  Transport* transport_;
  SocketCommConfig config_;
  JournalWriter journal_;
  std::uint32_t step_ = 0;
  std::int64_t declared_lost_ = 0;
  std::uint64_t round_ = 0;                 // gather round counter
  std::vector<PendingRound> lookahead_;     // per source rank
  std::vector<std::uint8_t> resolved_;      // per-round scratch
  int unresolved_ = 0;
  GatherResult gather_scratch_;
};

}  // namespace dlb
