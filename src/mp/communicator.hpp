// A miniature message-passing interface over threads.
//
// The paper's implementations ([7, 8]) ran on transputer networks
// programmed in SPMD message-passing style.  No MPI is assumed to exist
// in this environment, so this module provides the minimal substrate the
// algorithm's distributed implementation needs: ranked processes,
// tagged blocking/non-blocking point-to-point messages, and the
// collectives used for measurement (barrier, broadcast, allreduce,
// gather).  Everything runs in one OS process with one thread per rank;
// the API mirrors the message-passing model so the SPMD balancer in
// examples/spmd_balancer.cpp reads like its historical counterpart.
//
// Usage:
//   World world(8);                     // 8 ranks
//   world.launch([](Comm& comm) {       // SPMD: every rank runs this
//     if (comm.rank() == 0) comm.send(1, /*tag=*/0, {42});
//     if (comm.rank() == 1) auto msg = comm.recv(0, 0);
//     comm.barrier();
//     std::int64_t total = comm.allreduce_sum(comm.rank());
//   });
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace dlb {

/// A point-to-point message: a small vector of 64-bit words.
struct MpMessage {
  int source = -1;
  int tag = 0;
  std::vector<std::int64_t> payload;
};

class World;

/// Per-rank communicator handle; valid only inside World::launch.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Sends `payload` to `dest` with `tag`; never blocks (buffered).
  void send(int dest, int tag, std::vector<std::int64_t> payload);

  /// Receives the oldest matching message; blocks until one arrives.
  /// source == -1 matches any source; tag == -1 matches any tag.
  MpMessage recv(int source = -1, int tag = -1);

  /// Non-blocking probe-and-receive; nullopt when nothing matches.
  std::optional<MpMessage> try_recv(int source = -1, int tag = -1);

  /// Collective: all ranks must call; returns when everyone arrived.
  void barrier();

  /// Collective: rank `root`'s value is returned on every rank.
  std::int64_t broadcast(std::int64_t value, int root);

  /// Collectives over one int64 per rank.
  std::int64_t allreduce_sum(std::int64_t value);
  std::int64_t allreduce_min(std::int64_t value);
  std::int64_t allreduce_max(std::int64_t value);

  /// Collective: every rank receives the full vector of contributions,
  /// indexed by rank.
  std::vector<std::int64_t> allgather(std::int64_t value);

 private:
  friend class World;
  Comm(World& world, int rank) : world_(&world), rank_(rank) {}
  World* world_;
  int rank_;
};

/// The SPMD "machine": owns the mailboxes and collective state.
class World {
 public:
  explicit World(int size);

  int size() const { return size_; }

  /// Runs `body` on every rank concurrently (one thread per rank) and
  /// joins.  Exceptions thrown by any rank are rethrown (the first one)
  /// after all threads finish.  May be called repeatedly.
  void launch(const std::function<void(Comm&)>& body);

 private:
  friend class Comm;

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<MpMessage> messages;
  };

  struct CollectiveState {
    std::mutex mutex;
    std::condition_variable cv;
    int arrived = 0;
    int departing = 0;
    std::uint64_t generation = 0;
    std::vector<std::int64_t> slots;
    std::vector<std::int64_t> snapshot;
  };

  void post(int dest, MpMessage message);
  MpMessage wait_recv(int rank, int source, int tag);
  std::optional<MpMessage> poll_recv(int rank, int source, int tag);
  std::vector<std::int64_t> gather_all(int rank, std::int64_t value);

  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  CollectiveState collective_;
};

}  // namespace dlb
