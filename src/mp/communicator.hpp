// A miniature message-passing interface over threads.
//
// The paper's implementations ([7, 8]) ran on transputer networks
// programmed in SPMD message-passing style.  No MPI is assumed to exist
// in this environment, so this module provides the minimal substrate the
// algorithm's distributed implementation needs: ranked processes,
// tagged blocking/non-blocking point-to-point messages, and the
// collectives used for measurement (barrier, broadcast, allreduce,
// gather).  Everything runs in one OS process with one thread per rank;
// the API mirrors the message-passing model so the SPMD balancer in
// examples/spmd_balancer.cpp reads like its historical counterpart.
//
// Fault model (mp/fault.hpp): a seeded FaultPlan may be installed on the
// World before launch.  Point-to-point traffic is then subject to
// per-link message drop/duplication/delay, and every rank to the crash
// schedule.  Collectives are crash-aware — they complete over the live
// ranks and report degradation — but their control plane is modeled as
// reliable (real MPI collectives sit on retransmitting transports; the
// interesting failure is a *participant* dying, not a lost token):
//   - Comm::tick() advances the rank's step clock and throws RankCrashed
//     at the scheduled step; World::launch absorbs the throw and marks
//     the rank dead (not an error).
//   - recv_for() is the deadline-based receive for protocols that must
//     survive a silent partner.
//   - *_checked collectives complete without dead ranks and report a
//     `degraded` flag plus a per-rank alive mask instead of hanging.
//   - Comm::journal() feeds the crash-recovery LoadJournal so a dead
//     rank's load is recovered from its last checkpoint boundary.
// Without a plan (or with an inert one) every path is byte-identical to
// the fault-free implementation.
//
// Liveness contract: a blocking recv() whose source can no longer send
// (terminated or crashed peer, no matching message) and a collective
// entered after any peer *terminated* raise contract_error instead of
// blocking forever — a mismatched SPMD program is a bug, not a hang.
//
// Usage:
//   World world(8);                     // 8 ranks
//   world.launch([](Comm& comm) {       // SPMD: every rank runs this
//     if (comm.rank() == 0) comm.send(1, /*tag=*/0, {42});
//     if (comm.rank() == 1) auto msg = comm.recv(0, 0);
//     comm.barrier();
//     std::int64_t total = comm.allreduce_sum(comm.rank());
//   });
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/checkpoint.hpp"
#include "mp/fault.hpp"
#include "mp/message.hpp"
#include "mp/payload.hpp"
#include "mp/transport.hpp"
#include "obs/metrics.hpp"
#include "support/ring_queue.hpp"

namespace dlb {

/// Control-flow signal thrown by Comm::tick() when the fault plan kills
/// the rank.  Deliberately NOT derived from std::exception: application
/// catch(std::exception&) blocks must not swallow a scheduled crash.
struct RankCrashed {
  int rank = -1;
  std::uint32_t step = 0;
};

/// Result of a crash-aware collective.
struct GatherResult {
  std::vector<std::int64_t> values;  // dead ranks contribute 0
  std::vector<std::uint8_t> alive;   // liveness mask at round completion
  bool degraded = false;             // true iff any rank was dead

  int live_count() const {
    int n = 0;
    for (std::uint8_t a : alive) n += a;
    return n;
  }
};

class World;

/// Per-rank communicator handle; valid only inside World::launch.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Sends `words` to `dest` with `tag`; never blocks (buffered).  The
  /// payload is built in place — inline when it fits, else into a spill
  /// buffer drawn from the world's recycling pool — so steady-state
  /// sends never touch the allocator.
  void send(int dest, int tag, std::initializer_list<std::int64_t> words);
  /// Same, from an array (for payloads whose width is only known at
  /// runtime).
  void send(int dest, int tag, const std::int64_t* words, std::size_t count);

  /// Receives the oldest matching message; blocks until one arrives.
  /// source == -1 matches any source; tag == -1 matches any tag.
  /// Raises contract_error when no matching message can ever arrive
  /// (the source — or, for any-source, every peer — has terminated or
  /// crashed and nothing matching is queued).
  MpMessage recv(int source = -1, int tag = -1);

  /// Non-blocking probe-and-receive; nullopt when nothing matches.
  std::optional<MpMessage> try_recv(int source = -1, int tag = -1);

  /// Deadline-based receive: waits up to `timeout` for a matching
  /// message.  Returns nullopt on timeout, and returns nullopt early
  /// when the source is dead/terminated with nothing matching queued.
  std::optional<MpMessage> recv_for(int source, int tag,
                                    std::chrono::milliseconds timeout);

  /// Collective: all live ranks must call; returns when everyone arrived.
  void barrier();
  /// Crash-aware barrier: returns true when the round was degraded
  /// (some rank dead) instead of hanging on the dead rank.
  bool barrier_checked();

  /// Collective: rank `root`'s value is returned on every rank.
  /// (0 when `root` is dead.)
  std::int64_t broadcast(std::int64_t value, int root);

  /// Collectives over one int64 per rank (live ranks only).
  std::int64_t allreduce_sum(std::int64_t value);
  std::int64_t allreduce_min(std::int64_t value);
  std::int64_t allreduce_max(std::int64_t value);

  /// Collective: every rank receives the full vector of contributions,
  /// indexed by rank.
  std::vector<std::int64_t> allgather(std::int64_t value);
  /// Crash-aware allgather: values plus alive mask plus degraded flag.
  GatherResult allgather_checked(std::int64_t value);
  /// Allocation-free variant for per-step loops: fills `out`, reusing
  /// its capacity (the first round per `out` sizes it; later rounds are
  /// pure copies).
  void allgather_checked(std::int64_t value, GatherResult& out);

  /// Advances this rank's step clock; throws RankCrashed when the fault
  /// plan schedules this rank's death at the current step.
  void tick();
  std::uint32_t step() const { return step_; }

  /// Records this rank's (load, generated, consumed) into the crash
  /// journal for the current step (see LoadJournal).
  void journal(std::int64_t load, std::int64_t generated = 0,
               std::int64_t consumed = 0);

  /// Protocol-level loss accounting: adds `amount` to the world's
  /// declared-lost ledger (e.g. a transfer the receiver timed out on).
  void declare_lost(std::int64_t amount);

  /// Current liveness of a rank (true until it crashes or terminates).
  bool rank_alive(int rank) const;

 private:
  friend class World;
  Comm(World& world, int rank, Transport& transport)
      : world_(&world), transport_(&transport), rank_(rank) {}
  World* world_;
  Transport* transport_;  // p2p seam; collectives/journal stay on world_
  int rank_;
  std::uint32_t step_ = 0;
  // Collective scratch: barrier/broadcast/allreduce land each round's
  // snapshot here instead of a fresh GatherResult (warm after round 1).
  GatherResult gather_scratch_;
};

/// The SPMD "machine": owns the mailboxes and collective state.
class World {
 public:
  explicit World(int size);

  int size() const { return size_; }

  /// Installs the fault schedule applied by the next launch().  Must not
  /// be called while a launch is running.  An inert (default) plan
  /// leaves behaviour byte-identical to the fault-free implementation.
  void set_fault_plan(FaultPlan plan);
  const FaultPlan& fault_plan() const { return plan_; }

  /// Runs `body` on every rank concurrently (one thread per rank) and
  /// joins.  RankCrashed escapes are absorbed (the rank is marked dead);
  /// real exceptions thrown by any rank are rethrown (the first one)
  /// after all threads finish.  May be called repeatedly; fault/liveness
  /// state is re-armed per launch.
  void launch(const std::function<void(Comm&)>& body);

  /// Operational metrics: per-link delivered message/byte counters
  /// (mp.link.<s>-><d>.*) plus aggregate traffic, fault and timeout
  /// counters (mp.*).  Resolves every instrument up front, so the send
  /// path pays only relaxed atomic adds.  Must not be called while a
  /// launch is running.  May be null (detach); not owned.
  void attach_metrics(obs::MetricsRegistry* registry);

  /// Spill-buffer recycling pool for oversized payloads (tests observe
  /// reuse through its stats; see mp/payload.hpp).
  const PayloadPool& payload_pool() const { return payload_pool_; }

  /// Fault accounting of the most recent launch().
  FaultStats fault_stats() const;
  /// Crash journal of the most recent launch() (valid after it returns).
  const LoadJournal& journal() const { return journal_; }
  /// True when `rank` crashed during the most recent launch().
  bool rank_dead(int rank) const;

 private:
  friend class Comm;

  enum class RankStatus : std::uint8_t { Alive = 0, Dead = 1, Terminated = 2 };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    RingQueue<MpMessage> messages;
  };

  struct CollectiveState {
    std::mutex mutex;
    std::condition_variable cv;
    int arrived = 0;
    int departing = 0;
    std::uint64_t generation = 0;
    std::vector<std::int64_t> slots;
    std::vector<std::int64_t> snapshot;
    std::vector<std::uint8_t> alive_snapshot;
    bool degraded_snapshot = false;
  };

  friend class LocalTransport;

  void post(int dest, MpMessage message);
  MpMessage wait_recv(int rank, int source, int tag);
  std::optional<MpMessage> poll_recv(int rank, int source, int tag);
  std::optional<MpMessage> timed_recv(
      int rank, int source, int tag,
      std::chrono::steady_clock::time_point deadline);
  GatherResult gather_all(int rank, std::int64_t value);
  void gather_all_into(int rank, std::int64_t value, GatherResult& out);

  void arm_launch();
  void mark_dead(int rank, std::uint32_t step);
  void mark_terminated(int rank);
  void wake_all_mailboxes();
  RankStatus status(int rank) const;
  int live_count_locked() const;      // requires collective_.mutex
  void maybe_complete_round_locked(); // requires collective_.mutex
  /// True when a matching message from `source` can still be produced.
  bool can_still_arrive(int receiver, int source) const;

  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  CollectiveState collective_;
  PayloadPool payload_pool_;  // spill-buffer recycling for all ranks

  FaultPlan plan_;
  bool faults_armed_ = false;
  std::unique_ptr<std::atomic<std::uint8_t>[]> statuses_;
  LoadJournal journal_;

  // Counters; guarded by stats_mutex_ (fault paths only, never hot).
  mutable std::mutex stats_mutex_;
  FaultStats stats_;

  // Cached instrument handles (valid iff metrics_ != null).  Per-link
  // cells are row-major by source, like links_.
  struct LinkMetrics {
    obs::Counter* messages = nullptr;
    obs::Counter* bytes = nullptr;
  };
  struct WorldMetrics {
    obs::Counter* messages = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* duplicated = nullptr;
    obs::Counter* delayed = nullptr;
    obs::Counter* sends_to_dead = nullptr;
    obs::Counter* recv_timeouts = nullptr;
    obs::Counter* collective_rounds = nullptr;
  };
  obs::MetricsRegistry* metrics_ = nullptr;
  WorldMetrics wm_;
  std::vector<LinkMetrics> link_metrics_;  // size_ * size_
};

/// The in-process backend of the transport seam: one thread per rank,
/// delivery straight into the destination's mailbox.  One instance per
/// rank per launch (constructed by World::launch); when a fault plan is
/// armed the FaultyTransport decorator wraps it, reproducing the exact
/// pre-seam drop/dup/delay semantics.
class LocalTransport : public Transport {
 public:
  LocalTransport(World& world, int rank) : world_(&world), rank_(rank) {}

  int rank() const override { return rank_; }
  int size() const override { return world_->size(); }
  void send(int dest, int tag, const std::int64_t* words,
            std::size_t count) override;
  MpMessage recv(int source, int tag) override;
  std::optional<MpMessage> recv_until(
      int source, int tag,
      std::chrono::steady_clock::time_point deadline) override;
  std::optional<MpMessage> try_recv(int source, int tag) override;
  PeerState peer_state(int rank) const override;
  /// Termination is announced by World::launch (mark_terminated), not
  /// here — the mailboxes belong to the World and outlive the launch.
  void close() override {}

 private:
  World* world_;
  int rank_;
};

}  // namespace dlb
