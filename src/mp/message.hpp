// The point-to-point message record shared by every transport backend.
// Split out of mp/communicator.hpp so the transport seam
// (mp/transport.hpp) does not depend on the in-process World.
#pragma once

#include "mp/payload.hpp"

namespace dlb {

/// A point-to-point message: a few 64-bit words, stored inline (pooled
/// spill beyond MpPayload::kInlineWords — see mp/payload.hpp).  Exactly
/// one cache line, so mailbox slots recycle without touching the heap.
struct MpMessage {
  int source = -1;
  int tag = 0;
  MpPayload payload;
};

}  // namespace dlb
