#include "mp/socket_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>

#include "mp/frame.hpp"
#include "support/backoff.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace dlb {
namespace {

using Clock = std::chrono::steady_clock;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd, bool tcp) {
  if (!tcp) return;
  // Balance transactions are request-response over tiny frames; Nagle
  // would serialize them against delayed acks.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Blocking send of a whole buffer (rendezvous only; fds are still
/// blocking there and frames are tiny).
void send_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    DLB_ENSURE(n > 0, "handshake send failed");
    off += static_cast<std::size_t>(n);
  }
}

/// Flow id binding a framed send to its matching decode: per-link
/// sequence number tagged with the ordered (src, dst) pair.  Unique as
/// long as ranks fit in a byte and a link carries < 2^48 data frames —
/// both far beyond anything this transport is asked to do.
std::uint64_t flow_id_of(int src, int dst, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(static_cast<std::uint8_t>(src)) << 56) |
         (static_cast<std::uint64_t>(static_cast<std::uint8_t>(dst)) << 48) |
         (seq & ((std::uint64_t{1} << 48) - 1));
}

/// Flow category: application transfers vs reserved control plane (the
/// merged trace filters on this; Chrome binds flows by (cat, id, name)
/// so both endpoints must derive it identically — they do, from the
/// tag).
const char* flow_cat(int tag) {
  return tag < Transport::kReservedTagFloor ? "transfer" : "ctrl";
}

bool matches(const MpMessage& msg, int source, int tag) {
  return (source < 0 || msg.source == source) && (tag < 0 || msg.tag == tag);
}

std::optional<MpMessage> take_match(RingQueue<MpMessage>& messages,
                                    int source, int tag) {
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (matches(messages[i], source, tag)) {
      std::optional<MpMessage> out = std::move(messages[i]);
      messages.erase(i);
      return out;
    }
  }
  return std::nullopt;
}

}  // namespace

std::string SocketTransport::endpoint_path(const std::string& dir, int rank,
                                           bool tcp) {
  return dir + "/rank" + std::to_string(rank) + (tcp ? ".port" : ".sock");
}

SocketTransport::SocketTransport(int rank, int size, SocketOptions opts)
    : rank_(rank), size_(size), opts_(std::move(opts)) {
  DLB_REQUIRE(size >= 1, "transport needs at least one rank");
  DLB_REQUIRE(rank >= 0 && rank < size, "rank out of range");
  DLB_REQUIRE(!opts_.dir.empty(), "socket transport needs a rendezvous dir");
  peers_.resize(static_cast<std::size_t>(size));
  const auto deadline = Clock::now() + opts_.connect_timeout;
  bind_listener();
  connect_out(deadline);
  accept_in(deadline);
  // Mesh complete: switch every link to the steady-state non-blocking
  // discipline and start the failure-detector clocks.
  const auto now = Clock::now();
  for (int r = 0; r < size_; ++r) {
    Peer& p = peers_[static_cast<std::size_t>(r)];
    if (r == rank_ || p.fd < 0) continue;
    set_nonblocking(p.fd);
    p.last_heard = now;
  }
  last_beat_ = now;
}

SocketTransport::~SocketTransport() { close(); }

void SocketTransport::bind_listener() {
  if (opts_.tcp) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    DLB_ENSURE(listen_fd_ >= 0, "socket() failed");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral: published through the port file
    DLB_ENSURE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "tcp bind failed");
    DLB_ENSURE(::listen(listen_fd_, size_) == 0, "listen failed");
    sockaddr_in got{};
    socklen_t len = sizeof(got);
    DLB_ENSURE(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&got),
                             &len) == 0,
               "getsockname failed");
    // Publish the port atomically (write-then-rename): a connector
    // either sees no file yet or a complete one, never a torn write.
    listen_path_ = endpoint_path(opts_.dir, rank_, true);
    const std::string tmp = listen_path_ + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    DLB_ENSURE(f != nullptr, "cannot write port file");
    std::fprintf(f, "%d\n", static_cast<int>(ntohs(got.sin_port)));
    std::fclose(f);
    DLB_ENSURE(std::rename(tmp.c_str(), listen_path_.c_str()) == 0,
               "cannot publish port file");
  } else {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    DLB_ENSURE(listen_fd_ >= 0, "socket() failed");
    listen_path_ = endpoint_path(opts_.dir, rank_, false);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    DLB_REQUIRE(listen_path_.size() < sizeof(addr.sun_path),
                "rendezvous dir makes the socket path too long");
    std::strncpy(addr.sun_path, listen_path_.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(listen_path_.c_str());  // stale endpoint from a dead run
    DLB_ENSURE(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "unix bind failed");
    DLB_ENSURE(::listen(listen_fd_, size_) == 0, "listen failed");
  }
}

void SocketTransport::connect_out(Clock::time_point deadline) {
  // Every rank binds its listener before connecting anywhere, so
  // retrying until a lower rank's endpoint appears cannot deadlock.
  SplitMix64 jitter(std::uint64_t{0x736f636b} ^
                    (static_cast<std::uint64_t>(rank_) *
                     std::uint64_t{0x9e3779b9}));
  const auto try_connect = [&](int dest) -> int {
    if (opts_.tcp) {
      const std::string path = endpoint_path(opts_.dir, dest, true);
      std::FILE* f = std::fopen(path.c_str(), "r");
      if (f == nullptr) return -1;  // listener not published yet
      int port = 0;
      const bool ok = std::fscanf(f, "%d", &port) == 1;
      std::fclose(f);
      if (!ok || port <= 0) return -1;
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      DLB_ENSURE(fd >= 0, "socket() failed");
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(port));
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0)
        return fd;
      ::close(fd);
      return -1;
    }
    const std::string path = endpoint_path(opts_.dir, dest, false);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    DLB_ENSURE(fd >= 0, "socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      return fd;
    ::close(fd);  // ENOENT / ECONNREFUSED: peer not listening yet
    return -1;
  };

  for (int d = 0; d < rank_; ++d) {
    std::chrono::milliseconds delay{1};
    while (true) {
      const int fd = try_connect(d);
      if (fd >= 0) {
        set_nodelay(fd, opts_.tcp);
        // Announce which rank owns this end of the link.
        encode_scratch_.clear();
        const std::int64_t me = rank_;
        frame::encode(encode_scratch_,
                      FrameHeader{FrameKind::Hello, rank_, 0, 1}, &me, 1);
        send_all(fd, encode_scratch_.data(), encode_scratch_.size());
        peers_[static_cast<std::size_t>(d)].fd = fd;
        break;
      }
      ++connect_retries_;
      DLB_ENSURE(Clock::now() + delay < deadline,
                 "rendezvous timed out connecting to a lower rank");
      // Bounded exponential backoff with multiplicative jitter so a
      // gang of late starters does not hammer one listener in lockstep.
      const double factor =
          0.5 + static_cast<double>(jitter.next() % 1024) / 1024.0;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          static_cast<double>(delay.count()) * factor));
      delay = std::min(delay * 2, std::chrono::milliseconds{100});
    }
  }
}

void SocketTransport::accept_in(Clock::time_point deadline) {
  int expected = size_ - 1 - rank_;
  struct Pending {
    int fd = -1;
    std::vector<std::uint8_t> buf;
  };
  std::vector<Pending> pending;
  while (expected > 0) {
    DLB_ENSURE(Clock::now() < deadline,
               "rendezvous timed out waiting for higher ranks");
    std::vector<pollfd> fds;
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const Pending& p : pending) fds.push_back(pollfd{p.fd, POLLIN, 0});
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
    if ((fds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        set_nonblocking(fd);
        set_nodelay(fd, opts_.tcp);
        pending.push_back(Pending{fd, {}});
      }
    }
    for (std::size_t i = 0; i < pending.size();) {
      Pending& p = pending[i];
      std::uint8_t buf[4096];
      bool identified = false;
      while (true) {
        const ssize_t n = ::recv(p.fd, buf, sizeof(buf), 0);
        if (n > 0) {
          p.buf.insert(p.buf.end(), buf, buf + n);
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        break;  // EAGAIN (keep waiting) or EOF/error (judged below)
      }
      const frame::Decoded d = frame::decode(p.buf.data(), p.buf.size());
      if (d.status == frame::DecodeStatus::Ok) {
        DLB_ENSURE(d.header.kind == FrameKind::Hello,
                   "handshake violated: first frame was not Hello");
        const int who = d.header.source;
        DLB_ENSURE(who > rank_ && who < size_,
                   "handshake violated: unexpected rank in Hello");
        // Bytes past the Hello are real traffic from a peer that
        // finished its rendezvous first; keep them.
        adopt_fd(who, p.fd, p.buf.data() + d.consumed,
                 p.buf.size() - d.consumed);
        --expected;
        identified = true;
      } else {
        DLB_ENSURE(d.status == frame::DecodeStatus::NeedMore,
                   "handshake violated: corrupt Hello frame");
      }
      if (identified)
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
      else
        ++i;
    }
  }
}

void SocketTransport::adopt_fd(int peer_rank, int fd,
                               const std::uint8_t* leftover,
                               std::size_t leftover_len) {
  Peer& p = peers_[static_cast<std::size_t>(peer_rank)];
  DLB_ENSURE(p.fd < 0, "duplicate connection from a peer");
  p.fd = fd;
  p.rx.assign(leftover, leftover + leftover_len);
}

PeerState SocketTransport::peer_state(int rank) const {
  DLB_REQUIRE(rank >= 0 && rank < size_, "invalid rank");
  if (rank == rank_) return closed_ ? PeerState::Terminated : PeerState::Alive;
  return peers_[static_cast<std::size_t>(rank)].state;
}

void SocketTransport::enqueue_frame(Peer& peer, FrameKind kind, int tag,
                                    const std::int64_t* words,
                                    std::size_t count) {
  if (peer.state != PeerState::Alive || peer.fd < 0) return;
  encode_scratch_.clear();
  frame::encode(encode_scratch_,
                FrameHeader{kind, rank_, tag,
                            static_cast<std::uint32_t>(count)},
                words, count);
  peer.tx.insert(peer.tx.end(), encode_scratch_.begin(),
                 encode_scratch_.end());
  ++frames_sent_;
}

void SocketTransport::send(int dest, int tag, const std::int64_t* words,
                           std::size_t count) {
  DLB_REQUIRE(dest >= 0 && dest < size_, "invalid destination");
  DLB_REQUIRE(!closed_, "send after close");
  if (dest == rank_) {  // self-delivery, parity with the local backend
    MpMessage msg;
    msg.source = rank_;
    msg.tag = tag;
    msg.payload.assign(words, count, &pool_);
    inbox_.push_back(std::move(msg));
    if (m_sent_ != nullptr) {
      m_sent_->add();
      m_delivered_->add();
    }
    return;
  }
  Peer& p = peers_[static_cast<std::size_t>(dest)];
  if (p.state != PeerState::Alive) return;  // the wire leads nowhere
  const std::uint64_t t0 = tracing() ? trace_->now_ns() : 0;
  enqueue_frame(p, FrameKind::Data, tag, words, count);
  const std::uint64_t seq = p.tx_seq++;
  if (m_sent_ != nullptr) {
    const std::uint64_t wire = encode_scratch_.size();
    m_sent_->add();
    m_sent_bytes_->add(wire);
    link_tx_[static_cast<std::size_t>(dest)].messages->add();
    link_tx_[static_cast<std::size_t>(dest)].bytes->add(wire);
  }
  if (tracing())
    trace_->record_flow("mp.msg", flow_cat(tag), t0, 0,
                        flow_id_of(rank_, dest, seq), /*start=*/true,
                        static_cast<std::uint64_t>(tag));
  flush_peer(dest);
  if (tracing())
    trace_->span_end("send", "mp", t0, 0, static_cast<std::uint64_t>(tag));
}

void SocketTransport::flush_peer(int peer_rank) {
  Peer& p = peers_[static_cast<std::size_t>(peer_rank)];
  if (p.fd < 0) return;
  while (p.tx_off < p.tx.size()) {
    const ssize_t n = ::send(p.fd, p.tx.data() + p.tx_off,
                             p.tx.size() - p.tx_off, MSG_NOSIGNAL);
    if (n > 0) {
      p.tx_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return;  // kernel buffer full; POLLOUT will resume the flush
    // EPIPE/ECONNRESET: peer socket is gone
    mark_peer_down(peer_rank, "send_error");
    return;
  }
  p.tx.clear();
  p.tx_off = 0;
}

void SocketTransport::ingest(int peer_rank) {
  Peer& p = peers_[static_cast<std::size_t>(peer_rank)];
  if (p.fd < 0) return;
  std::uint8_t buf[65536];
  bool got_bytes = false;
  bool down = false;
  while (true) {
    const ssize_t n = ::recv(p.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      p.rx.insert(p.rx.end(), buf, buf + n);
      got_bytes = true;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    down = true;  // EOF or hard error — judged after draining rx
    break;
  }
  if (got_bytes) p.last_heard = Clock::now();
  const std::uint64_t t0 = tracing() ? trace_->now_ns() : 0;
  std::uint64_t data_frames = 0;
  // Decode everything we have before passing the liveness verdict: a
  // Goodbye that raced the close must count as clean termination.
  std::size_t off = 0;
  while (off < p.rx.size()) {
    const frame::Decoded d =
        frame::decode(p.rx.data() + off, p.rx.size() - off);
    if (d.status == frame::DecodeStatus::NeedMore) break;
    off += d.consumed;
    if (d.status == frame::DecodeStatus::Corrupt) {
      // Corruption == loss: drop the frame, count it, resync.
      ++frames_corrupt_;
      if (m_corrupt_ != nullptr) m_corrupt_->add();
      continue;
    }
    ++frames_received_;
    switch (d.header.kind) {
      case FrameKind::Data: {
        MpMessage msg;
        msg.source = peer_rank;  // the link identifies the sender
        msg.tag = d.header.tag;
        frame::read_words(d, msg.payload, &pool_);
        inbox_.push_back(std::move(msg));
        const std::uint64_t seq = p.rx_seq++;
        ++data_frames;
        if (m_delivered_ != nullptr) {
          m_delivered_->add();
          m_delivered_bytes_->add(d.consumed);
          link_rx_[static_cast<std::size_t>(peer_rank)].messages->add();
          link_rx_[static_cast<std::size_t>(peer_rank)].bytes->add(
              d.consumed);
        }
        if (tracing())
          trace_->record_flow("mp.msg", flow_cat(d.header.tag),
                              trace_->now_ns(), 0,
                              flow_id_of(peer_rank, rank_, seq),
                              /*start=*/false,
                              static_cast<std::uint64_t>(d.header.tag));
        break;
      }
      case FrameKind::Goodbye:
        p.said_goodbye = true;
        p.state = PeerState::Terminated;
        if (tracing())
          trace_->instant("goodbye", "detector", 0,
                          static_cast<std::uint64_t>(peer_rank));
        break;
      case FrameKind::Hello:
      case FrameKind::Heartbeat:
        break;  // liveness evidence only (last_heard above)
    }
  }
  p.rx.erase(p.rx.begin(), p.rx.begin() + static_cast<std::ptrdiff_t>(off));
  if (tracing() && data_frames > 0)
    trace_->span_end("ingest", "mp", t0, 0, data_frames);
  if (down) mark_peer_down(peer_rank, "eof");
}

void SocketTransport::mark_peer_down(int peer_rank, const char* verdict) {
  Peer& p = peers_[static_cast<std::size_t>(peer_rank)];
  if (p.fd >= 0) {
    ::close(p.fd);
    p.fd = -1;
  }
  p.tx.clear();
  p.tx_off = 0;
  if (p.state == PeerState::Alive) {
    p.state = p.said_goodbye ? PeerState::Terminated : PeerState::Dead;
    if (tracing())
      trace_->instant(p.said_goodbye ? "goodbye" : verdict, "detector", 0,
                      static_cast<std::uint64_t>(peer_rank));
  }
}

void SocketTransport::pump(std::chrono::milliseconds budget) {
  if (closed_) return;
  const auto now = Clock::now();
  if (now - last_beat_ >= opts_.heartbeat) {
    last_beat_ = now;
    for (int r = 0; r < size_; ++r) {
      if (r == rank_) continue;
      Peer& p = peers_[static_cast<std::size_t>(r)];
      if (p.state == PeerState::Alive && p.fd >= 0) {
        enqueue_frame(p, FrameKind::Heartbeat, 0, nullptr, 0);
        if (m_heartbeats_ != nullptr) m_heartbeats_->add();
      }
    }
  }
  std::vector<pollfd> fds;
  std::vector<int> owners;
  fds.reserve(static_cast<std::size_t>(size_));
  owners.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    if (r == rank_) continue;
    const Peer& p = peers_[static_cast<std::size_t>(r)];
    if (p.fd < 0) continue;
    short events = POLLIN;
    if (p.tx_off < p.tx.size()) events |= POLLOUT;
    fds.push_back(pollfd{p.fd, events, 0});
    owners.push_back(r);
  }
  // Cap the blocking wait at the heartbeat period: the detector and
  // keepalives must keep running during long receives.
  const auto cap = std::max<std::chrono::milliseconds>(
      std::chrono::milliseconds{0}, std::min(budget, opts_.heartbeat));
  if (fds.empty()) {
    if (cap.count() > 0) std::this_thread::sleep_for(cap);
    return;
  }
  ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
         static_cast<int>(cap.count()));
  for (std::size_t i = 0; i < fds.size(); ++i) {
    const int r = owners[i];
    if ((fds[i].revents & POLLOUT) != 0) flush_peer(r);
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) ingest(r);
  }
  if (opts_.suspect_after.count() > 0) {
    const auto check = Clock::now();
    for (int r = 0; r < size_; ++r) {
      if (r == rank_) continue;
      Peer& p = peers_[static_cast<std::size_t>(r)];
      if (p.state == PeerState::Alive && p.fd >= 0 &&
          check - p.last_heard > opts_.suspect_after)
        mark_peer_down(r, "suspect");  // silent too long: suspected dead
    }
  }
}

void SocketTransport::attach_obs(const SocketObs& obs) {
  trace_ = obs.trace;
  if (obs.metrics == nullptr) return;
  obs::MetricsRegistry& reg = *obs.metrics;
  m_sent_ = &reg.counter("mp.sent");
  m_sent_bytes_ = &reg.counter("mp.sent_bytes");
  m_delivered_ = &reg.counter("mp.delivered");
  m_delivered_bytes_ = &reg.counter("mp.delivered_bytes");
  m_corrupt_ = &reg.counter("mp.frames_corrupt");
  m_heartbeats_ = &reg.counter("mp.heartbeats");
  m_recv_timeouts_ = &reg.counter("mp.recv_timeouts");
  link_tx_.assign(static_cast<std::size_t>(size_), LinkCell{});
  link_rx_.assign(static_cast<std::size_t>(size_), LinkCell{});
  const std::string me = std::to_string(rank_);
  for (int r = 0; r < size_; ++r) {
    if (r == rank_) continue;
    const std::string out = "mp.link." + me + "->" + std::to_string(r);
    const std::string in = "mp.link." + std::to_string(r) + "->" + me;
    link_tx_[static_cast<std::size_t>(r)] = {
        &reg.counter(out + ".sent_messages"),
        &reg.counter(out + ".sent_bytes")};
    // Delivered traffic keeps the local backend's naming, so merged
    // machine metrics read uniformly across transports.
    link_rx_[static_cast<std::size_t>(r)] = {&reg.counter(in + ".messages"),
                                             &reg.counter(in + ".bytes")};
  }
}

bool SocketTransport::can_still_arrive(int source) const {
  if (source >= 0)
    return source != rank_ &&
           peers_[static_cast<std::size_t>(source)].state == PeerState::Alive;
  for (int r = 0; r < size_; ++r) {
    if (r == rank_) continue;
    if (peers_[static_cast<std::size_t>(r)].state == PeerState::Alive)
      return true;
  }
  return false;
}

MpMessage SocketTransport::recv(int source, int tag) {
  DLB_REQUIRE(source < size_, "invalid source");
  Backoff backoff;
  while (true) {
    if (auto out = take_match(inbox_, source, tag)) return std::move(*out);
    pump(std::chrono::milliseconds{0});
    if (auto out = take_match(inbox_, source, tag)) return std::move(*out);
    DLB_ENSURE(can_still_arrive(source),
               "recv would block forever: source terminated or crashed "
               "with no matching message queued");
    if (backoff.spinning())
      backoff.wait();
    else
      pump(opts_.heartbeat);
  }
}

std::optional<MpMessage> SocketTransport::recv_until(
    int source, int tag, std::chrono::steady_clock::time_point deadline) {
  DLB_REQUIRE(source < size_, "invalid source");
  Backoff backoff;
  while (true) {
    if (auto out = take_match(inbox_, source, tag)) return out;
    pump(std::chrono::milliseconds{0});
    if (auto out = take_match(inbox_, source, tag)) return out;
    if (!can_still_arrive(source)) return std::nullopt;
    const auto now = Clock::now();
    if (now >= deadline) {
      ++recv_timeouts_;
      if (m_recv_timeouts_ != nullptr) m_recv_timeouts_->add();
      return std::nullopt;
    }
    if (backoff.spinning()) {
      backoff.wait();
      continue;
    }
    const auto remaining =
        std::chrono::ceil<std::chrono::milliseconds>(deadline - now);
    pump(std::max(std::chrono::milliseconds{1},
                  std::min(remaining, opts_.heartbeat)));
  }
}

std::optional<MpMessage> SocketTransport::try_recv(int source, int tag) {
  pump(std::chrono::milliseconds{0});
  return take_match(inbox_, source, tag);
}

void SocketTransport::close() {
  if (closed_) return;
  for (int r = 0; r < size_; ++r) {
    if (r == rank_) continue;
    Peer& p = peers_[static_cast<std::size_t>(r)];
    if (p.state == PeerState::Alive && p.fd >= 0)
      enqueue_frame(p, FrameKind::Goodbye, 0, nullptr, 0);
  }
  // Bounded best-effort drain: the Goodbye (and any data queued behind
  // a full kernel buffer) is a courtesy, not a guarantee — a crash is
  // precisely the absence of it.
  const auto flush_deadline = Clock::now() + std::chrono::milliseconds{1000};
  while (Clock::now() < flush_deadline) {
    bool tx_pending = false;
    for (int r = 0; r < size_; ++r) {
      if (r == rank_) continue;
      const Peer& p = peers_[static_cast<std::size_t>(r)];
      if (p.fd >= 0 && p.tx_off < p.tx.size()) tx_pending = true;
    }
    if (!tx_pending) break;
    pump(std::chrono::milliseconds{1});
  }
  for (Peer& p : peers_) {
    if (p.fd >= 0) ::close(p.fd);
    p.fd = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!listen_path_.empty()) ::unlink(listen_path_.c_str());
  closed_ = true;
}

}  // namespace dlb
