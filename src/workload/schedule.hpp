// Compiled per-step active-processor lists.
//
// A Workload is a static phase schedule: every (processor, step) pair is
// either inside exactly one phase or outside all of them, and a
// processor outside any phase draws *no* RNG values in Workload::sample
// (Rng::bernoulli(p) only draws for 0 < p < 1, and out-of-phase
// processors never reach a draw at all).  Skipping those processors is
// therefore bit-identical to sampling them — they contribute nothing to
// the RNG stream and no events.  ActiveSchedule precompiles the phase
// boundaries into sorted (step, processor) event lists so a simulator
// step touches only the processors with a phase covering it: O(active +
// boundary churn) per step instead of O(n).
//
// Phases whose generate AND consume probabilities are both zero are
// elided at compile time for the same reason: bernoulli(0) returns
// without drawing, so a fully silent phase contributes neither RNG draws
// nor events.
//
// The schedule can be restricted to a processor range [begin, end) —
// the sharded driver compiles one schedule per shard, each holding only
// its own processors.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/workload.hpp"

namespace dlb {

class ActiveSchedule {
 public:
  /// One active processor at the current step, with the phase governing
  /// it (never null, never fully silent).
  struct Entry {
    std::uint32_t proc;
    const Phase* phase;
  };

  /// Compiles the schedule for processors [begin, end) of `workload`
  /// (defaults to all of them).  The workload must outlive the schedule
  /// (entries point into its phase storage).
  explicit ActiveSchedule(const Workload& workload);
  ActiveSchedule(const Workload& workload, std::uint32_t begin,
                 std::uint32_t end);

  /// Compiles the schedule for the strided processor set
  /// {p : p ≡ offset (mod stride)}.  The asynchronous engine owns
  /// processors round-robin (owner = p mod shards) so a contiguous
  /// hotspot spreads across shards instead of landing in one block;
  /// the union of the stride schedules over all offsets is exactly the
  /// full schedule.
  static ActiveSchedule strided(const Workload& workload,
                                std::uint32_t offset, std::uint32_t stride);

  std::uint32_t horizon() const { return horizon_; }
  /// Total compiled (non-silent) phases — the schedule's memory is
  /// O(phases), independent of horizon and of n.
  std::size_t compiled_phases() const { return adds_.size(); }

  /// Advances to step t and returns the processors active at t,
  /// ascending by processor id.  Steps must be visited in order
  /// t = 0, 1, 2, ... (call reset() to rewind); the returned reference
  /// is valid until the next advance()/reset().
  const std::vector<Entry>& advance(std::uint32_t t);

  /// Rewinds to step 0 for another pass.
  void reset();

 private:
  ActiveSchedule() = default;  // used by strided()

  // Compiles the boundary lists for {first, first+step, ...} ∩ [0, end).
  void compile(const Workload& workload, std::uint32_t first,
               std::uint32_t end, std::uint32_t step);

  struct Boundary {
    std::uint32_t step;
    std::uint32_t proc;
    const Phase* phase;  // null for removals
  };

  // Phase boundaries sorted by (step, proc): adds_ at phase starts,
  // rems_ at end+1.  Cursors advance monotonically with the step.
  std::vector<Boundary> adds_;
  std::vector<Boundary> rems_;
  std::size_t add_i_ = 0;
  std::size_t rem_i_ = 0;
  std::uint32_t next_t_ = 0;
  std::uint32_t horizon_ = 0;
  // Double-buffered active list: steps with no boundary reuse it as is.
  std::vector<Entry> active_;
  std::vector<Entry> scratch_;
};

}  // namespace dlb
