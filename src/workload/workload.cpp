#include "workload/workload.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dlb {

Workload::Workload(std::uint32_t processors, std::uint32_t horizon,
                   std::vector<std::vector<Phase>> phases, std::string name)
    : processors_(processors),
      horizon_(horizon),
      phases_(std::move(phases)),
      name_(std::move(name)) {
  DLB_REQUIRE(processors_ >= 1, "workload needs at least one processor");
  DLB_REQUIRE(horizon_ >= 1, "workload needs a positive horizon");
  DLB_REQUIRE(phases_.size() == processors_,
              "one phase list per processor required");
  for (const auto& list : phases_) {
    std::uint32_t prev_end = 0;
    bool first = true;
    for (const auto& ph : list) {
      DLB_REQUIRE(ph.start <= ph.end, "phase must have start <= end");
      DLB_REQUIRE(first || ph.start > prev_end,
                  "phases of a processor must be disjoint and sorted");
      DLB_REQUIRE(ph.generate_prob >= 0.0 && ph.generate_prob <= 1.0,
                  "generate probability out of [0,1]");
      DLB_REQUIRE(ph.consume_prob >= 0.0 && ph.consume_prob <= 1.0,
                  "consume probability out of [0,1]");
      prev_end = ph.end;
      first = false;
    }
  }
}

const std::vector<Phase>& Workload::phases_of(std::uint32_t processor) const {
  DLB_REQUIRE(processor < processors_, "processor id out of range");
  return phases_[processor];
}

const Phase* Workload::find_phase(std::uint32_t processor,
                                  std::uint32_t t) const {
  DLB_REQUIRE(processor < processors_, "processor id out of range");
  const auto& list = phases_[processor];
  // Stateless lookup: phases are disjoint and sorted (checked by the
  // constructor), so the candidate is the first phase with end >= t.
  // Keeping this method free of writes makes concurrent sampling of one
  // shared Workload through the const API safe.
  const auto it = std::lower_bound(
      list.begin(), list.end(), t,
      [](const Phase& ph, std::uint32_t step) { return ph.end < step; });
  if (it != list.end() && it->start <= t) return &*it;
  return nullptr;
}

double Workload::generate_prob(std::uint32_t processor,
                               std::uint32_t t) const {
  const Phase* ph = find_phase(processor, t);
  return ph ? ph->generate_prob : 0.0;
}

double Workload::consume_prob(std::uint32_t processor,
                              std::uint32_t t) const {
  const Phase* ph = find_phase(processor, t);
  return ph ? ph->consume_prob : 0.0;
}

WorkEvent Workload::sample(std::uint32_t processor, std::uint32_t t,
                           Rng& rng) const {
  const Phase* ph = find_phase(processor, t);
  WorkEvent ev;
  if (ph == nullptr) return ev;
  ev.generate = rng.bernoulli(ph->generate_prob);
  ev.consume = rng.bernoulli(ph->consume_prob);
  return ev;
}

Workload Workload::paper_benchmark(std::uint32_t processors,
                                   std::uint32_t horizon,
                                   const WorkloadParams& params, Rng& rng) {
  DLB_REQUIRE(params.len_low >= 1 && params.len_low <= params.len_high,
              "phase length bounds inconsistent");
  std::vector<std::vector<Phase>> phases(processors);
  for (std::uint32_t p = 0; p < processors; ++p) {
    std::uint32_t t = 0;
    while (t < horizon) {
      Phase ph;
      ph.start = t;
      const auto len = static_cast<std::uint32_t>(
          rng.range(params.len_low, params.len_high));
      ph.end = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          horizon - 1, std::uint64_t{t} + len - 1));
      ph.generate_prob = rng.uniform(params.g_low, params.g_high);
      ph.consume_prob = rng.uniform(params.c_low, params.c_high);
      phases[p].push_back(ph);
      t = ph.end + 1;
    }
  }
  return Workload(processors, horizon, std::move(phases), "paper-benchmark");
}

Workload Workload::one_producer(std::uint32_t processors,
                                std::uint32_t horizon) {
  std::vector<std::vector<Phase>> phases(processors);
  phases[0].push_back(Phase{0, horizon - 1, 1.0, 0.0});
  return Workload(processors, horizon, std::move(phases), "one-producer");
}

Workload Workload::one_producer_consumer(std::uint32_t processors,
                                         std::uint32_t horizon, double g,
                                         double c) {
  std::vector<std::vector<Phase>> phases(processors);
  phases[0].push_back(Phase{0, horizon - 1, g, c});
  return Workload(processors, horizon, std::move(phases),
                  "one-producer-consumer");
}

Workload Workload::uniform(std::uint32_t processors, std::uint32_t horizon,
                           double g, double c) {
  std::vector<std::vector<Phase>> phases(processors);
  for (auto& list : phases) list.push_back(Phase{0, horizon - 1, g, c});
  return Workload(processors, horizon, std::move(phases), "uniform");
}

Workload Workload::hotspot(std::uint32_t processors, std::uint32_t horizon,
                           std::uint32_t hot, double hot_g, double cold_c) {
  DLB_REQUIRE(hot >= 1 && hot <= processors, "hotspot count out of range");
  std::vector<std::vector<Phase>> phases(processors);
  for (std::uint32_t p = 0; p < processors; ++p) {
    if (p < hot) {
      phases[p].push_back(Phase{0, horizon - 1, hot_g, 0.0});
    } else {
      phases[p].push_back(Phase{0, horizon - 1, 0.0, cold_c});
    }
  }
  return Workload(processors, horizon, std::move(phases), "hotspot");
}

Workload Workload::sparse_hotspot(std::uint32_t processors,
                                  std::uint32_t horizon, std::uint32_t active,
                                  double g, double c) {
  DLB_REQUIRE(active >= 1 && active <= processors,
              "active count out of range");
  std::vector<std::vector<Phase>> phases(processors);
  for (std::uint32_t p = 0; p < active; ++p)
    phases[p].push_back(Phase{0, horizon - 1, g, c});
  return Workload(processors, horizon, std::move(phases), "sparse-hotspot");
}

Workload Workload::wave(std::uint32_t processors, std::uint32_t horizon,
                        std::uint32_t window) {
  DLB_REQUIRE(window >= 1, "wave window must be positive");
  std::vector<std::vector<Phase>> phases(processors);
  // Each processor is "hot" (generating) during a window that moves one
  // processor forward every `window` steps; outside its window it consumes.
  for (std::uint32_t p = 0; p < processors; ++p) {
    std::uint32_t t = 0;
    while (t < horizon) {
      const std::uint32_t active =
          static_cast<std::uint32_t>((t / window) % processors);
      Phase ph;
      ph.start = t;
      ph.end = std::min(horizon - 1, t + window - 1);
      if (active == p) {
        ph.generate_prob = 0.9;
        ph.consume_prob = 0.0;
      } else {
        ph.generate_prob = 0.0;
        ph.consume_prob = 0.3;
      }
      phases[p].push_back(ph);
      t = ph.end + 1;
    }
  }
  return Workload(processors, horizon, std::move(phases), "wave");
}

Workload Workload::bursty(std::uint32_t processors, std::uint32_t horizon,
                          std::uint32_t period, double g, double c) {
  DLB_REQUIRE(period >= 1, "burst period must be positive");
  std::vector<std::vector<Phase>> phases(processors);
  for (std::uint32_t p = 0; p < processors; ++p) {
    std::uint32_t t = 0;
    bool generating = true;
    while (t < horizon) {
      Phase ph;
      ph.start = t;
      ph.end = std::min(horizon - 1, t + period - 1);
      ph.generate_prob = generating ? g : 0.0;
      ph.consume_prob = generating ? 0.0 : c;
      phases[p].push_back(ph);
      t = ph.end + 1;
      generating = !generating;
    }
  }
  return Workload(processors, horizon, std::move(phases), "bursty");
}

Workload Workload::flip_flop(std::uint32_t processors, std::uint32_t horizon,
                             std::uint32_t period, double g, double c) {
  DLB_REQUIRE(period >= 1, "flip-flop period must be positive");
  std::vector<std::vector<Phase>> phases(processors);
  for (std::uint32_t p = 0; p < processors; ++p) {
    std::uint32_t t = 0;
    bool first_half = p < processors / 2;
    while (t < horizon) {
      const bool even_epoch = (t / period) % 2 == 0;
      const bool generating = (first_half == even_epoch);
      Phase ph;
      ph.start = t;
      ph.end = std::min(horizon - 1, t + period - 1);
      ph.generate_prob = generating ? g : 0.0;
      ph.consume_prob = generating ? 0.0 : c;
      phases[p].push_back(ph);
      t = ph.end + 1;
    }
  }
  return Workload(processors, horizon, std::move(phases), "flip-flop");
}

}  // namespace dlb
