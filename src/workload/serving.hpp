// Request-serving workload: Zipf-skewed session traffic compiled into
// the phase-schedule model.
//
// The paper's guarantees are about imbalance, but what a serving system
// buys with balance is tail latency.  This generator produces a
// production-shaped demand pattern: millions of user sessions hashed
// into per-processor load classes, per-step packet arrivals whose
// across-processor skew follows a seeded Zipf(alpha) popularity
// distribution, a diurnal modulation envelope, and flash-crowd bursts
// that multiply a small processor subset's arrival rate for a bounded
// window.  The output is an ordinary Workload (per-processor phases
// with generate/consume probabilities per segment), so every engine —
// serial batched, lockstep-sharded, async, threaded — can drive it
// unchanged, and Trace::record can pin one demand realization for the
// baseline comparisons.
//
// Zipf sampling uses rejection inversion (Hormann & Derflinger 1996,
// the sampler behind Apache Commons' RejectionInversionZipfSampler):
// O(1) per draw with no O(sessions) table, which is what makes a
// multi-million-session universe practical.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"
#include "workload/workload.hpp"

namespace dlb {

/// Bounded Zipf(alpha) sampler over ranks {1, ..., n} via rejection
/// inversion: P(rank = k) proportional to k^-alpha.  Deterministic given
/// the caller's Rng; alpha > 0 (alpha = 1 is handled exactly).
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double alpha);

  std::uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

  /// Draws a 1-based rank.  Expected rejections < 1 for all (n, alpha).
  std::uint64_t sample(Rng& rng) const;

  /// Analytic pmf P(rank = k) (oracle for the statistical tests; O(n)
  /// on first use per sampler via the cached normalizer).
  double pmf(std::uint64_t k) const;

 private:
  // H(x) = integral of x^-alpha, shifted so rejection inversion works on
  // [h_x1_, h_n_]; h_inverse undoes it.  See Hormann & Derflinger.
  double h(double x) const;
  double h_integral(double x) const;
  double h_integral_inverse(double x) const;
  // exp(alpha * log1p(x)) helpers, stable near alpha = 1.
  static double helper1(double x);
  static double helper2(double x);

  std::uint64_t n_;
  double alpha_;
  double h_x1_;
  double h_n_;
  double s_;
  mutable double norm_ = 0.0;  // pmf normalizer, computed lazily
};

/// Shape of the serving scenario.  Defaults model a mid-size frontend:
/// two million sessions, alpha just past 1 (web-like popularity skew),
/// ~55% offered load against ~75% service capacity, one diurnal cycle
/// per 400 steps and one flash crowd.
struct ServingParams {
  /// User-session universe.  Sessions are ranked by popularity; session
  /// k's traffic share is proportional to k^-alpha.
  std::uint64_t sessions = 2'000'000;
  /// Zipf exponent: 0.8 = mild skew, 1.1 = web-like, 1.4 = viral-heavy.
  double alpha = 1.1;
  /// Zipf draws per segment used to estimate the per-processor arrival
  /// mix, as a multiple of n.  More draws = smoother, less draws =
  /// noisier (more non-stationary) segment rates.
  std::uint32_t draws_per_proc = 8;
  /// Mean per-processor arrival probability per step at envelope 1.
  /// Hot processors clamp at 1 packet/step (the model's unit); the
  /// excess is exactly the overload the balancer must spread.
  double offered_load = 0.55;
  /// Per-step consume probability of every processor (service capacity).
  double service_prob = 0.75;
  /// Phase granularity: arrival rates are re-estimated (and the
  /// envelope re-sampled) every `segment_steps` steps.
  std::uint32_t segment_steps = 50;
  /// Diurnal modulation: envelope(t) = 1 + depth * sin(2 pi t / period).
  std::uint32_t diurnal_period = 400;
  double diurnal_depth = 0.35;
  /// Flash crowds: `flash_crowds` windows of `flash_steps` steps each at
  /// seeded random offsets; within a window, a seeded random set of
  /// ceil(flash_width * n) processors sees its arrival probability
  /// multiplied by flash_boost (then clamped to 1).
  std::uint32_t flash_crowds = 1;
  std::uint32_t flash_steps = 60;
  double flash_boost = 6.0;
  double flash_width = 0.05;
};

/// Builder for the serving workload (stateless; all entry points are
/// static and fully determined by their arguments).
class ServingWorkload {
 public:
  /// Compiles the scenario into a Workload named
  /// "serving-zipf(<alpha>)".  Deterministic given (processors, horizon,
  /// params, seed); engines drive it like any other workload.
  static Workload build(std::uint32_t processors, std::uint32_t horizon,
                        const ServingParams& params, std::uint64_t seed);

  /// The stationary per-processor arrival mix (sums to 1): session k of
  /// the Zipf universe contributes pmf(k) to the processor its hash
  /// lands on.  Exposed for tests and for sizing intuition; O(draws)
  /// sampled estimate, not the O(sessions) exact sum.
  static std::vector<double> arrival_mix(std::uint32_t processors,
                                         const ServingParams& params,
                                         std::uint64_t seed,
                                         std::uint64_t draws);

  /// Session-to-processor hash (SplitMix64 of the session rank, salted
  /// by the workload seed, reduced mod n).  Exposed so the RSS baseline
  /// and the tests agree with the generator on class placement.
  static std::uint32_t session_processor(std::uint64_t session,
                                         std::uint32_t processors,
                                         std::uint64_t seed);
};

}  // namespace dlb
