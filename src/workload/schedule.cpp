#include "workload/schedule.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dlb {

ActiveSchedule::ActiveSchedule(const Workload& workload)
    : ActiveSchedule(workload, 0, workload.processors()) {}

ActiveSchedule::ActiveSchedule(const Workload& workload, std::uint32_t begin,
                               std::uint32_t end)
    : horizon_(workload.horizon()) {
  DLB_REQUIRE(begin <= end && end <= workload.processors(),
              "schedule processor range out of bounds");
  compile(workload, begin, end, 1);
}

ActiveSchedule ActiveSchedule::strided(const Workload& workload,
                                       std::uint32_t offset,
                                       std::uint32_t stride) {
  DLB_REQUIRE(stride >= 1, "schedule stride must be at least 1");
  DLB_REQUIRE(offset < stride, "schedule offset must be below the stride");
  ActiveSchedule schedule;
  schedule.horizon_ = workload.horizon();
  schedule.compile(workload, offset, workload.processors(), stride);
  return schedule;
}

void ActiveSchedule::compile(const Workload& workload, std::uint32_t first,
                             std::uint32_t end, std::uint32_t step) {
  for (std::uint32_t p = first; p < end; p += step) {
    for (const Phase& ph : workload.phases_of(p)) {
      if (ph.generate_prob == 0.0 && ph.consume_prob == 0.0)
        continue;  // silent phase: no draws, no events (see header)
      if (ph.start >= horizon_) continue;  // never reached
      adds_.push_back(Boundary{ph.start, p, &ph});
      // The run loop only visits t < horizon, so clamp the removal step
      // to horizon (also avoids end+1 overflow for end == UINT32_MAX).
      const auto rem_step = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(ph.end, horizon_ - 1) + 1);
      rems_.push_back(Boundary{rem_step, p, nullptr});
    }
  }
  // (step, proc) pairs are unique per list: a processor's phases are
  // disjoint, so it contributes at most one add and one remove per step.
  const auto by_step_proc = [](const Boundary& a, const Boundary& b) {
    return a.step != b.step ? a.step < b.step : a.proc < b.proc;
  };
  std::sort(adds_.begin(), adds_.end(), by_step_proc);
  std::sort(rems_.begin(), rems_.end(), by_step_proc);
}

void ActiveSchedule::reset() {
  add_i_ = 0;
  rem_i_ = 0;
  next_t_ = 0;
  active_.clear();
}

const std::vector<ActiveSchedule::Entry>& ActiveSchedule::advance(
    std::uint32_t t) {
  DLB_REQUIRE(t == next_t_, "schedule must advance one step at a time");
  DLB_REQUIRE(t < horizon_, "step beyond the workload horizon");
  ++next_t_;
  const std::size_t a0 = add_i_;
  const std::size_t r0 = rem_i_;
  while (add_i_ < adds_.size() && adds_[add_i_].step == t) ++add_i_;
  while (rem_i_ < rems_.size() && rems_[rem_i_].step == t) ++rem_i_;
  if (a0 == add_i_ && r0 == rem_i_) return active_;  // no boundary at t

  // Three-way merge (old active \ removals) ∪ additions, all ascending
  // by processor.  A processor in both lists hands off from its ended
  // phase to the one starting this step.
  scratch_.clear();
  std::size_t i = 0;
  std::size_t a = a0;
  std::size_t r = r0;
  while (i < active_.size() || a < add_i_) {
    if (a == add_i_ ||
        (i < active_.size() && active_[i].proc < adds_[a].proc)) {
      if (r < rem_i_ && rems_[r].proc == active_[i].proc) {
        ++r;  // phase ended, nothing starts: drop
      } else {
        scratch_.push_back(active_[i]);
      }
      ++i;
    } else if (i == active_.size() || adds_[a].proc < active_[i].proc) {
      scratch_.push_back(Entry{adds_[a].proc, adds_[a].phase});
      ++a;
    } else {
      // Same processor: phases are disjoint, so the old one must end
      // exactly where the new one starts.
      DLB_ENSURE(r < rem_i_ && rems_[r].proc == active_[i].proc,
                 "overlapping phases in the compiled schedule");
      ++r;
      scratch_.push_back(Entry{adds_[a].proc, adds_[a].phase});
      ++a;
      ++i;
    }
  }
  DLB_ENSURE(r == rem_i_, "schedule removal without a matching active entry");
  active_.swap(scratch_);
  return active_;
}

}  // namespace dlb
