// Synthetic workload patterns.
//
// §7 of the paper drives the algorithm with phase-structured random
// workloads: each processor i runs through tuples (g_i, c_i, start_i,
// end_i) and, within a phase, generates a packet with probability g_i and
// consumes one (if available) with probability c_i per global time step.
// The tuple parameters are drawn from (g_l, g_h, c_l, c_h, len_l, len_h).
// Since the paper's theorems hold "for any load pattern", we also provide
// a library of stress patterns (one-producer, hotspot, wave, bursty,
// flip-flop) used by tests and ablation benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace dlb {

/// One workload phase of a single processor: within [start, end] (global
/// time steps, inclusive) the processor generates with probability
/// `generate_prob` and consumes with probability `consume_prob`.
struct Phase {
  std::uint32_t start = 0;
  std::uint32_t end = 0;
  double generate_prob = 0.0;
  double consume_prob = 0.0;
};

/// What a processor does in one global time step.  Generation and
/// consumption are drawn independently, matching §7 ("generates ... with
/// probability g_i and consumes a load packet if available with
/// probability c_i"); the basic model's one-unit-per-step restriction is
/// recovered because the theorems allow any constant number of units per
/// step (§2).
struct WorkEvent {
  bool generate = false;
  bool consume = false;
};

/// The §7 experiment parameters.
struct WorkloadParams {
  double g_low = 0.1;
  double g_high = 0.9;
  double c_low = 0.1;
  double c_high = 0.7;
  std::uint32_t len_low = 150;
  std::uint32_t len_high = 400;
};

/// A fully resolved workload: per-processor phase schedules over a finite
/// horizon.  Resolving the randomness once (at construction) makes a
/// workload replayable across algorithms, which is what the baseline
/// comparison benches need — every algorithm sees the *same* demand.
class Workload {
 public:
  Workload(std::uint32_t processors, std::uint32_t horizon,
           std::vector<std::vector<Phase>> phases, std::string name);

  std::uint32_t processors() const { return processors_; }
  std::uint32_t horizon() const { return horizon_; }
  const std::string& name() const { return name_; }
  const std::vector<Phase>& phases_of(std::uint32_t processor) const;

  /// Probability that `processor` generates at step t (0 outside phases).
  double generate_prob(std::uint32_t processor, std::uint32_t t) const;
  double consume_prob(std::uint32_t processor, std::uint32_t t) const;

  /// Draws the processor's action at step t.  A processor outside any
  /// phase draws no random values at all.  Const access (including this
  /// method) is safe from multiple threads as long as each caller brings
  /// its own Rng.
  WorkEvent sample(std::uint32_t processor, std::uint32_t t, Rng& rng) const;

  // ---- Factories ------------------------------------------------------

  /// The paper's §7 benchmark: consecutive random phases per processor.
  static Workload paper_benchmark(std::uint32_t processors,
                                  std::uint32_t horizon,
                                  const WorkloadParams& params, Rng& rng);

  /// Only processor 0 generates (probability 1); nobody consumes.  The
  /// §3 one-processor-generator model.
  static Workload one_producer(std::uint32_t processors,
                               std::uint32_t horizon);

  /// Processor 0 generates with probability g and consumes with
  /// probability c; everyone else is idle.  The §3 producer-consumer
  /// model.
  static Workload one_producer_consumer(std::uint32_t processors,
                                        std::uint32_t horizon, double g,
                                        double c);

  /// Every processor generates with probability g and consumes with
  /// probability c for the whole horizon.
  static Workload uniform(std::uint32_t processors, std::uint32_t horizon,
                          double g, double c);

  /// `hot` processors generate heavily; the rest only consume.
  static Workload hotspot(std::uint32_t processors, std::uint32_t horizon,
                          std::uint32_t hot, double hot_g, double cold_c);

  /// `active` processors generate with probability g and consume with
  /// probability c; the remaining processors have *no phases at all* —
  /// they draw no randomness and fire no events.  The sparse-demand
  /// regime the event-batched step engine targets: a step costs
  /// O(active), independent of n.
  static Workload sparse_hotspot(std::uint32_t processors,
                                 std::uint32_t horizon, std::uint32_t active,
                                 double g, double c);

  /// Generation activity sweeps across the processor range in windows,
  /// so the load source keeps moving — an adversary for any balancing
  /// scheme keyed to static producers.
  static Workload wave(std::uint32_t processors, std::uint32_t horizon,
                       std::uint32_t window);

  /// Alternating global bursts: phases of heavy generation followed by
  /// phases of heavy consumption, everywhere.
  static Workload bursty(std::uint32_t processors, std::uint32_t horizon,
                         std::uint32_t period, double g, double c);

  /// Half the machine generates while the other half consumes; roles swap
  /// every `period` steps.
  static Workload flip_flop(std::uint32_t processors, std::uint32_t horizon,
                            std::uint32_t period, double g, double c);

 private:
  std::uint32_t processors_;
  std::uint32_t horizon_;
  std::vector<std::vector<Phase>> phases_;
  std::string name_;

  // Stateless (phases are sorted and disjoint: binary search); safe to
  // call concurrently on one shared Workload.
  const Phase* find_phase(std::uint32_t processor, std::uint32_t t) const;
};

}  // namespace dlb
