// Demand traces: record the resolved generate/consume decisions of a
// workload once, replay them against any algorithm.
//
// The baseline-comparison benches must feed *identical* demand to every
// algorithm under test — otherwise differences in imbalance could be an
// artifact of different random demand rather than of balancing policy.
// A Trace pins down, per (step, processor), exactly what the application
// did; the simulators accept either a live Workload or a Trace.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "workload/workload.hpp"

namespace dlb {

class Trace {
 public:
  Trace(std::uint32_t processors, std::uint32_t horizon);

  /// Resolves all of `workload`'s randomness with `rng` into a trace.
  static Trace record(const Workload& workload, Rng& rng);

  std::uint32_t processors() const { return processors_; }
  std::uint32_t horizon() const { return horizon_; }

  WorkEvent at(std::uint32_t processor, std::uint32_t t) const;
  void set(std::uint32_t processor, std::uint32_t t, WorkEvent ev);

  /// Net demand = total generations − total consumption *attempts*.
  std::int64_t net_demand() const;
  std::uint64_t total_generations() const;
  std::uint64_t total_consume_attempts() const;

  /// Text round-trip (one line per step: 2 bits per processor), for
  /// storing regression fixtures.
  void save(std::ostream& os) const;
  static Trace load(std::istream& is);

  bool operator==(const Trace& other) const = default;

 private:
  std::size_t index(std::uint32_t processor, std::uint32_t t) const {
    return static_cast<std::size_t>(t) * processors_ + processor;
  }

  std::uint32_t processors_;
  std::uint32_t horizon_;
  // 2 bits per cell packed as bytes: bit0 = generate, bit1 = consume.
  std::vector<std::uint8_t> cells_;
};

}  // namespace dlb
