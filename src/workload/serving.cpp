#include "workload/serving.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "support/check.hpp"

namespace dlb {

// ---- ZipfSampler ------------------------------------------------------
//
// Rejection inversion for the bounded Zipf distribution (Hormann &
// Derflinger, "Rejection-inversion to generate variates from monotone
// discrete distributions", 1996).  h(x) = x^-alpha is the unnormalized
// density; H is its integral, extended so that inverting H on a uniform
// variate proposes a real x whose rounded rank k is accepted unless the
// proposal fell into the sliver between the continuous envelope and the
// discrete staircase.  Expected rejections stay below one for every
// (n, alpha), so sample() is O(1) without any per-rank table.

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha) {
  DLB_REQUIRE(n >= 1, "Zipf needs a non-empty rank universe");
  DLB_REQUIRE(alpha > 0.0, "Zipf exponent must be positive");
  h_x1_ = h_integral(1.5) - 1.0;
  h_n_ = h_integral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfSampler::helper1(double x) {
  // log1p(x) / x, stable as x -> 0.
  if (std::abs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x * (0.5 - x * (1.0 / 3.0 - x * 0.25));
}

double ZipfSampler::helper2(double x) {
  // expm1(x) / x, stable as x -> 0.
  if (std::abs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + x * (0.5 + x * (1.0 / 6.0 + x * (1.0 / 24.0)));
}

double ZipfSampler::h(double x) const {
  return std::exp(-alpha_ * std::log(x));
}

double ZipfSampler::h_integral(double x) const {
  const double log_x = std::log(x);
  return helper2((1.0 - alpha_) * log_x) * log_x;
}

double ZipfSampler::h_integral_inverse(double x) const {
  double t = x * (1.0 - alpha_);
  // Clamp round-off: t < -1 would put the argument of log1p below -1.
  if (t < -1.0) t = -1.0;
  return std::exp(helper1(t) * x);
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  if (n_ == 1) return 1;
  while (true) {
    const double u = h_n_ + rng.uniform01() * (h_x1_ - h_n_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(
        std::max(1.0, std::min(static_cast<double>(n_), x + 0.5)));
    // Fast acceptance: proposals within s of their rank are always
    // inside the envelope; otherwise compare against the exact
    // staircase boundary.
    if (static_cast<double>(k) - x <= s_) return k;
    if (u >= h_integral(static_cast<double>(k) + 0.5) -
                 h(static_cast<double>(k)))
      return k;
  }
}

double ZipfSampler::pmf(std::uint64_t k) const {
  DLB_REQUIRE(k >= 1 && k <= n_, "rank out of range");
  if (norm_ == 0.0) {
    double sum = 0.0;
    for (std::uint64_t j = 1; j <= n_; ++j)
      sum += std::exp(-alpha_ * std::log(static_cast<double>(j)));
    norm_ = sum;
  }
  return std::exp(-alpha_ * std::log(static_cast<double>(k))) / norm_;
}

// ---- ServingWorkload --------------------------------------------------

std::uint32_t ServingWorkload::session_processor(std::uint64_t session,
                                                 std::uint32_t processors,
                                                 std::uint64_t seed) {
  // One SplitMix64 round over the salted session rank: cheap, well
  // mixed, and shared verbatim with the RSS baseline's flow hash.
  SplitMix64 mix(seed ^ (session * 0x9e3779b97f4a7c15ULL));
  return static_cast<std::uint32_t>(mix.next() % processors);
}

std::vector<double> ServingWorkload::arrival_mix(std::uint32_t processors,
                                                 const ServingParams& params,
                                                 std::uint64_t seed,
                                                 std::uint64_t draws) {
  DLB_REQUIRE(draws >= 1, "arrival_mix needs at least one draw");
  const ZipfSampler zipf(params.sessions, params.alpha);
  Rng rng(seed);
  std::vector<double> mix(processors, 0.0);
  for (std::uint64_t d = 0; d < draws; ++d)
    mix[session_processor(zipf.sample(rng), processors, seed)] += 1.0;
  for (double& m : mix) m /= static_cast<double>(draws);
  return mix;
}

Workload ServingWorkload::build(std::uint32_t processors,
                                std::uint32_t horizon,
                                const ServingParams& params,
                                std::uint64_t seed) {
  DLB_REQUIRE(processors >= 1, "serving workload needs processors");
  DLB_REQUIRE(horizon >= 1, "serving workload needs a positive horizon");
  DLB_REQUIRE(params.segment_steps >= 1, "segment_steps must be positive");
  DLB_REQUIRE(params.offered_load > 0.0, "offered_load must be positive");
  DLB_REQUIRE(params.service_prob >= 0.0 && params.service_prob <= 1.0,
              "service_prob out of [0,1]");
  DLB_REQUIRE(params.flash_boost >= 1.0, "flash_boost must be >= 1");
  DLB_REQUIRE(params.flash_width >= 0.0 && params.flash_width <= 1.0,
              "flash_width out of [0,1]");
  DLB_REQUIRE(params.diurnal_period >= 1, "diurnal_period must be positive");

  const std::uint32_t n = processors;
  const std::uint32_t segments =
      (horizon + params.segment_steps - 1) / params.segment_steps;
  const std::uint64_t draws = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(params.draws_per_proc) * n);
  const ZipfSampler zipf(params.sessions, params.alpha);
  Rng rng(seed);

  // Flash-crowd windows, resolved up front at segment granularity: each
  // event picks a start segment and a seeded random processor set.  The
  // windows draw from a split-off stream (split before any use of the
  // main stream) so changing flash_crowds — including to zero — leaves
  // the per-segment Zipf rates bit-identical.
  Rng flash_rng = rng.split();
  const std::uint32_t flash_segments = std::max<std::uint32_t>(
      1, (params.flash_steps + params.segment_steps - 1) /
             params.segment_steps);
  const auto flash_procs_count = static_cast<std::uint32_t>(std::min<double>(
      n, std::ceil(params.flash_width * static_cast<double>(n))));
  struct Flash {
    std::uint32_t first_segment;
    std::uint32_t last_segment;
    std::vector<std::uint32_t> procs;
  };
  std::vector<Flash> flashes;
  for (std::uint32_t e = 0; e < params.flash_crowds; ++e) {
    if (flash_procs_count == 0) break;
    Flash fl;
    fl.first_segment = static_cast<std::uint32_t>(flash_rng.below(
        std::max<std::uint32_t>(1, segments > flash_segments
                                       ? segments - flash_segments
                                       : 1)));
    fl.last_segment =
        std::min(segments - 1, fl.first_segment + flash_segments - 1);
    fl.procs = flash_rng.sample_distinct(n, flash_procs_count, n);
    std::sort(fl.procs.begin(), fl.procs.end());
    flashes.push_back(std::move(fl));
  }

  std::vector<std::vector<Phase>> phases(n);
  for (auto& list : phases) list.reserve(segments);
  std::vector<std::uint32_t> tally(n);
  std::vector<double> boost(n);
  for (std::uint32_t s = 0; s < segments; ++s) {
    const std::uint32_t start = s * params.segment_steps;
    const std::uint32_t end =
        std::min(horizon - 1, start + params.segment_steps - 1);
    // Per-segment arrival mix: fresh Zipf draws every segment, so the
    // hot set drifts (non-stationary demand) while the marginal skew
    // stays Zipf(alpha).
    std::fill(tally.begin(), tally.end(), 0);
    for (std::uint64_t d = 0; d < draws; ++d)
      ++tally[session_processor(zipf.sample(rng), n, seed)];
    // Diurnal envelope at the segment midpoint.
    const double t_mid = 0.5 * (static_cast<double>(start) +
                                static_cast<double>(end));
    const double envelope =
        1.0 + params.diurnal_depth *
                  std::sin(2.0 * 3.14159265358979323846 * t_mid /
                           static_cast<double>(params.diurnal_period));
    std::fill(boost.begin(), boost.end(), 1.0);
    for (const Flash& fl : flashes)
      if (s >= fl.first_segment && s <= fl.last_segment)
        for (std::uint32_t p : fl.procs) boost[p] *= params.flash_boost;
    for (std::uint32_t p = 0; p < n; ++p) {
      const double share =
          static_cast<double>(tally[p]) / static_cast<double>(draws);
      const double rate = params.offered_load * static_cast<double>(n) *
                          share * envelope * boost[p];
      Phase ph;
      ph.start = start;
      ph.end = end;
      // One packet per step is the model's unit; overloaded hot
      // processors saturate at probability 1 — exactly the overload the
      // balancer must spread.
      ph.generate_prob = std::min(1.0, std::max(0.0, rate));
      ph.consume_prob = params.service_prob;
      phases[p].push_back(ph);
    }
  }

  char name[48];
  std::snprintf(name, sizeof(name), "serving-zipf(%.2f)", params.alpha);
  return Workload(n, horizon, std::move(phases), name);
}

}  // namespace dlb
