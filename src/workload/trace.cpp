#include "workload/trace.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "support/check.hpp"

namespace dlb {

Trace::Trace(std::uint32_t processors, std::uint32_t horizon)
    : processors_(processors),
      horizon_(horizon),
      cells_(static_cast<std::size_t>(processors) * horizon, 0) {
  DLB_REQUIRE(processors >= 1, "trace needs at least one processor");
  DLB_REQUIRE(horizon >= 1, "trace needs a positive horizon");
}

Trace Trace::record(const Workload& workload, Rng& rng) {
  Trace trace(workload.processors(), workload.horizon());
  for (std::uint32_t t = 0; t < workload.horizon(); ++t) {
    for (std::uint32_t p = 0; p < workload.processors(); ++p) {
      trace.set(p, t, workload.sample(p, t, rng));
    }
  }
  return trace;
}

WorkEvent Trace::at(std::uint32_t processor, std::uint32_t t) const {
  DLB_REQUIRE(processor < processors_ && t < horizon_,
              "trace index out of range");
  const std::uint8_t bits = cells_[index(processor, t)];
  return WorkEvent{(bits & 1u) != 0, (bits & 2u) != 0};
}

void Trace::set(std::uint32_t processor, std::uint32_t t, WorkEvent ev) {
  DLB_REQUIRE(processor < processors_ && t < horizon_,
              "trace index out of range");
  cells_[index(processor, t)] = static_cast<std::uint8_t>(
      (ev.generate ? 1u : 0u) | (ev.consume ? 2u : 0u));
}

std::int64_t Trace::net_demand() const {
  return static_cast<std::int64_t>(total_generations()) -
         static_cast<std::int64_t>(total_consume_attempts());
}

std::uint64_t Trace::total_generations() const {
  std::uint64_t total = 0;
  for (std::uint8_t bits : cells_) total += bits & 1u;
  return total;
}

std::uint64_t Trace::total_consume_attempts() const {
  std::uint64_t total = 0;
  for (std::uint8_t bits : cells_) total += (bits >> 1) & 1u;
  return total;
}

void Trace::save(std::ostream& os) const {
  os << processors_ << ' ' << horizon_ << '\n';
  for (std::uint32_t t = 0; t < horizon_; ++t) {
    for (std::uint32_t p = 0; p < processors_; ++p) {
      os << static_cast<char>('0' + cells_[index(p, t)]);
    }
    os << '\n';
  }
}

Trace Trace::load(std::istream& is) {
  std::uint32_t processors = 0;
  std::uint32_t horizon = 0;
  is >> processors >> horizon;
  DLB_REQUIRE(is.good(), "trace header malformed");
  Trace trace(processors, horizon);
  std::string line;
  std::getline(is, line);  // consume end of header line
  for (std::uint32_t t = 0; t < horizon; ++t) {
    std::getline(is, line);
    DLB_REQUIRE(line.size() >= processors, "trace line too short");
    for (std::uint32_t p = 0; p < processors; ++p) {
      const char c = line[p];
      DLB_REQUIRE(c >= '0' && c <= '3', "trace cell malformed");
      trace.cells_[trace.index(p, t)] = static_cast<std::uint8_t>(c - '0');
    }
  }
  return trace;
}

}  // namespace dlb
