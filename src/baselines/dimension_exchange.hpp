// Dimension exchange (Cybenko 1989) — the classic hypercube-structured
// balancing scheme: in round k, every processor equalizes (±1) with its
// neighbor across hypercube dimension k; after d rounds (one "sweep")
// the load is globally balanced if nothing changed meanwhile.
//
// Included as the strongest *structured* competitor: unlike diffusion it
// converges in d = log2(n) rounds rather than O(diameter²) steps, but it
// requires a hypercube and balances on a fixed schedule rather than
// demand-driven like the paper's algorithm — the comparison shows what
// the random-partner scheme buys on irregular demand.
#pragma once

#include "baselines/balancer.hpp"
#include "support/rng.hpp"

namespace dlb {

class DimensionExchange final : public LoadBalancer {
 public:
  struct Params {
    /// Exchange with one dimension per end_step call (the asynchronous
    /// schedule); a full sweep takes `dimension` steps.
    bool one_dimension_per_step = true;
  };

  /// n = 2^dimension processors.
  DimensionExchange(unsigned dimension, Params params);

  std::string name() const override { return "dimension-exchange"; }
  void generate(std::uint32_t p) override;
  bool consume(std::uint32_t p) override;
  void end_step(std::uint32_t t) override;
  std::vector<std::int64_t> loads() const override { return loads_; }

  unsigned dimension() const { return dimension_; }

 private:
  void exchange_dimension(unsigned k);

  unsigned dimension_;
  Params params_;
  std::vector<std::int64_t> loads_;
};

}  // namespace dlb
