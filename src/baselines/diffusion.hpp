// First-order diffusion on an interconnection topology (Cybenko 1989
// style) — the classic nearest-neighbor averaging family the paper's
// introduction contrasts with (gradient-model and diffusive schemes,
// references [6, 9]).
//
// Each global step, every edge (u, v) exchanges alpha·(l_u − l_v) packets
// (rounded toward zero) from the heavier to the lighter side, using the
// pre-step snapshot so the sweep is simultaneous and conservative.
// Diffusion only reacts at topology speed: on a large-diameter network
// load spreads in O(diameter) steps, which is the contrast with the
// paper's distance-free random-partner operations.
#pragma once

#include "baselines/balancer.hpp"
#include "net/topology.hpp"

namespace dlb {

class Diffusion final : public LoadBalancer {
 public:
  struct Params {
    /// Exchange rate per edge; stability requires alpha <= 1/(max_degree+1).
    /// 0 means "choose 1/(max_degree+1) automatically".
    double alpha = 0.0;
  };

  /// `topology` must outlive the balancer.
  Diffusion(const Topology& topology, Params params);

  std::string name() const override { return "diffusion"; }
  void generate(std::uint32_t p) override;
  bool consume(std::uint32_t p) override;
  void end_step(std::uint32_t t) override;
  std::vector<std::int64_t> loads() const override { return loads_; }

  double alpha() const { return alpha_; }

 private:
  const Topology& topology_;
  std::vector<std::int64_t> loads_;
  double alpha_;
};

}  // namespace dlb
