// Common interface for load balancing strategies under comparison.
//
// The paper motivates its algorithm against simpler schemes: §5's
// strawman (ship everything to a random processor — perfect expected
// balance, useless variance) and the Rudolph–Slivkin-Allalouf–Upfal
// SPAA'91 scheme [20] whose analysis the paper corrects.  We add the two
// classic practical competitors from the work-stealing / diffusion
// families.  Every strategy implements the same demand-driven interface
// and is driven by the *same* recorded Trace, so measured differences are
// attributable to policy alone.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "workload/trace.hpp"

namespace dlb {

class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;

  virtual std::string name() const = 0;

  /// Start-of-run hook, called by run_trace before the first step.
  /// Strategies that mirror external cost totals (DlbAdapter) re-anchor
  /// their delta baselines here so a reused instance cannot undercount.
  virtual void begin_run() {}

  /// The application generated one packet on processor p.
  virtual void generate(std::uint32_t p) = 0;

  /// The application wants to consume one packet on processor p; returns
  /// false if the strategy could not provide one.
  virtual bool consume(std::uint32_t p) = 0;

  /// End-of-step hook for periodic strategies (diffusion, scatter, RSU).
  virtual void end_step(std::uint32_t t) { (void)t; }

  virtual std::vector<std::int64_t> loads() const = 0;
  virtual std::int64_t total_load() const;

  /// Cost counters every strategy maintains.
  std::uint64_t messages() const { return messages_; }
  std::uint64_t packets_moved() const { return packets_moved_; }
  std::uint64_t consume_failures() const { return consume_failures_; }

 protected:
  void count_message(std::uint64_t n = 1) { messages_ += n; }
  void count_moved(std::uint64_t n) { packets_moved_ += n; }
  void count_failure() { ++consume_failures_; }

 private:
  std::uint64_t messages_ = 0;
  std::uint64_t packets_moved_ = 0;
  std::uint64_t consume_failures_ = 0;
};

/// Replays `trace` against `balancer`; `on_step` (optional) observes the
/// load vector after every global step.
void run_trace(
    LoadBalancer& balancer, const Trace& trace,
    const std::function<void(std::uint32_t, const std::vector<std::int64_t>&)>&
        on_step = {});

}  // namespace dlb
