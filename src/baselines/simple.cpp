#include "baselines/simple.hpp"

#include "support/check.hpp"

namespace dlb {

NoBalancing::NoBalancing(std::uint32_t processors) : loads_(processors, 0) {
  DLB_REQUIRE(processors >= 1, "need at least one processor");
}

void NoBalancing::generate(std::uint32_t p) { loads_.at(p) += 1; }

bool NoBalancing::consume(std::uint32_t p) {
  if (loads_.at(p) == 0) {
    count_failure();
    return false;
  }
  loads_[p] -= 1;
  return true;
}

RandomScatter::RandomScatter(std::uint32_t processors, std::uint64_t seed)
    : loads_(processors, 0), rng_(seed) {
  DLB_REQUIRE(processors >= 2, "scatter needs at least two processors");
}

void RandomScatter::generate(std::uint32_t p) { loads_.at(p) += 1; }

bool RandomScatter::consume(std::uint32_t p) {
  if (loads_.at(p) == 0) {
    count_failure();
    return false;
  }
  loads_[p] -= 1;
  return true;
}

void RandomScatter::end_step(std::uint32_t t) {
  (void)t;
  // Each processor ships its entire queue to one random processor.  The
  // moves are computed from the pre-step snapshot so processors scatter
  // simultaneously, as in the paper's description.
  const std::vector<std::int64_t> snapshot = loads_;
  for (std::uint32_t p = 0; p < snapshot.size(); ++p) {
    if (snapshot[p] == 0) continue;
    const auto target = static_cast<std::uint32_t>(
        rng_.below(snapshot.size()));
    if (target == p) continue;
    loads_[p] -= snapshot[p];
    loads_[target] += snapshot[p];
    count_message();
    count_moved(static_cast<std::uint64_t>(snapshot[p]));
  }
}

}  // namespace dlb
