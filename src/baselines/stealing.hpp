// Receiver-initiated work stealing (steal-half), the strategy of Cilk-style
// runtimes.
//
// A processor that tries to consume from an empty queue picks up to
// `max_probes` uniformly random victims and steals half of the first
// non-empty victim's queue.  Work stealing guarantees that no processor
// starves while work exists elsewhere, but — unlike the paper's algorithm
// — it makes no attempt to keep loads *equal*, which is exactly the
// contrast the baseline bench shows: low consume-failure rate, high load
// spread.
#pragma once

#include "baselines/balancer.hpp"
#include "support/rng.hpp"

namespace dlb {

class WorkStealing final : public LoadBalancer {
 public:
  struct Params {
    std::uint32_t max_probes = 3;
  };

  WorkStealing(std::uint32_t processors, Params params, std::uint64_t seed);

  std::string name() const override { return "work-stealing"; }
  void generate(std::uint32_t p) override;
  bool consume(std::uint32_t p) override;
  std::vector<std::int64_t> loads() const override { return loads_; }

  std::uint64_t steals() const { return steals_; }

 private:
  std::vector<std::int64_t> loads_;
  Params params_;
  Rng rng_;
  std::uint64_t steals_ = 0;
};

}  // namespace dlb
