#include "baselines/diffusion.hpp"

#include <cmath>

#include "support/check.hpp"

namespace dlb {

Diffusion::Diffusion(const Topology& topology, Params params)
    : topology_(topology),
      loads_(topology.size(), 0) {
  std::size_t max_degree = 0;
  for (ProcId u = 0; u < topology_.size(); ++u)
    max_degree = std::max(max_degree, topology_.degree(u));
  DLB_REQUIRE(max_degree >= 1, "diffusion needs a connected topology");
  alpha_ = params.alpha > 0.0
               ? params.alpha
               : 1.0 / (static_cast<double>(max_degree) + 1.0);
  DLB_REQUIRE(alpha_ > 0.0 && alpha_ <= 1.0, "alpha out of range");
}

void Diffusion::generate(std::uint32_t p) { loads_.at(p) += 1; }

bool Diffusion::consume(std::uint32_t p) {
  if (loads_.at(p) == 0) {
    count_failure();
    return false;
  }
  loads_[p] -= 1;
  return true;
}

void Diffusion::end_step(std::uint32_t t) {
  (void)t;
  const std::vector<std::int64_t> snapshot = loads_;
  for (ProcId u = 0; u < topology_.size(); ++u) {
    for (ProcId v : topology_.neighbors(u)) {
      if (v <= u) continue;  // each undirected edge once
      const std::int64_t diff = snapshot[u] - snapshot[v];
      const auto flow = static_cast<std::int64_t>(
          std::trunc(alpha_ * static_cast<double>(diff)));
      if (flow == 0) continue;
      loads_[u] -= flow;
      loads_[v] += flow;
      count_message();
      count_moved(static_cast<std::uint64_t>(std::llabs(flow)));
    }
  }
}

}  // namespace dlb
