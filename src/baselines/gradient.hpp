// The Gradient Model (Lin & Keller 1987) — the paper's reference [6] and
// the classic topology-driven alternative its introduction contrasts
// with.
//
// Each processor classifies itself as light (load <= low watermark) or
// not and maintains a *proximity*: its estimated hop distance to the
// nearest light processor, computed from neighbors' proximities
// (information propagates one hop per step, as in the original
// asynchronous scheme).  Heavily loaded processors (load >= high
// watermark) push one packet per step toward the neighbor with the
// smallest proximity — work flows down the pressure gradient until it
// reaches a light processor.
#pragma once

#include "baselines/balancer.hpp"
#include "net/topology.hpp"

namespace dlb {

class GradientModel final : public LoadBalancer {
 public:
  struct Params {
    std::int64_t low_watermark = 1;    // "light" below/equal this load
    std::int64_t high_watermark = 3;   // pushes when at/above this load
    /// Packets pushed per step by an overloaded processor.
    std::int64_t push_per_step = 1;
  };

  /// `topology` must outlive the balancer.
  GradientModel(const Topology& topology, Params params);

  std::string name() const override { return "gradient-model-87"; }
  void generate(std::uint32_t p) override;
  bool consume(std::uint32_t p) override;
  void end_step(std::uint32_t t) override;
  std::vector<std::int64_t> loads() const override { return loads_; }

  /// Current proximity estimate of processor p (diameter+1 = "no light
  /// processor known").
  unsigned proximity(std::uint32_t p) const;

 private:
  void update_proximities();

  const Topology& topology_;
  Params params_;
  std::vector<std::int64_t> loads_;
  std::vector<unsigned> proximity_;
  unsigned unreachable_;
};

}  // namespace dlb
