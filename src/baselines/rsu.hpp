// The Rudolph–Slivkin-Allalouf–Upfal scheme (SPAA'91), reference [20].
//
// The paper under reproduction positions itself against this algorithm:
// [20] was the only prior theoretical result for fully dynamic load
// balancing, and its proof contains incorrect assumptions (Mehlhorn's
// counterexample, reference [10]).  The scheme itself: after each local
// operation a processor flips a coin with probability min(1, 1/l) (l its
// current load) and, on success, compares load with one uniformly random
// partner; if the difference exceeds a threshold the two equalize.  Light
// processors thus probe often, heavy ones rarely.
#pragma once

#include "baselines/balancer.hpp"
#include "support/rng.hpp"

namespace dlb {

class RudolphUpfal final : public LoadBalancer {
 public:
  struct Params {
    /// Equalize when |l_p − l_q| > threshold.
    std::int64_t threshold = 1;
  };

  RudolphUpfal(std::uint32_t processors, Params params, std::uint64_t seed);

  std::string name() const override { return "rudolph-upfal-91"; }
  void generate(std::uint32_t p) override;
  bool consume(std::uint32_t p) override;
  /// [20] has every processor flip its balancing coin after each time
  /// step, whether or not it performed a local operation; without this,
  /// idle heavy processors would never shed load.
  void end_step(std::uint32_t t) override;
  std::vector<std::int64_t> loads() const override { return loads_; }

 private:
  void maybe_probe(std::uint32_t p);

  std::vector<std::int64_t> loads_;
  Params params_;
  Rng rng_;
};

}  // namespace dlb
