#include "baselines/dimension_exchange.hpp"

#include <cstdlib>

#include "support/check.hpp"

namespace dlb {

DimensionExchange::DimensionExchange(unsigned dimension, Params params)
    : dimension_(dimension),
      params_(params),
      loads_(std::size_t{1} << dimension, 0) {
  DLB_REQUIRE(dimension >= 1 && dimension <= 20,
              "dimension exchange needs 1 <= d <= 20");
}

void DimensionExchange::generate(std::uint32_t p) { loads_.at(p) += 1; }

bool DimensionExchange::consume(std::uint32_t p) {
  if (loads_.at(p) == 0) {
    count_failure();
    return false;
  }
  loads_[p] -= 1;
  return true;
}

void DimensionExchange::exchange_dimension(unsigned k) {
  const auto bit = std::uint32_t{1} << k;
  for (std::uint32_t p = 0; p < loads_.size(); ++p) {
    const std::uint32_t q = p ^ bit;
    if (q < p) continue;  // each pair once
    const std::int64_t pool = loads_[p] + loads_[q];
    const std::int64_t diff = loads_[p] - loads_[q];
    if (diff == 0) continue;
    // The lower-indexed partner keeps the odd packet.
    const std::int64_t lo = pool / 2;
    loads_[p] = pool - lo;
    loads_[q] = lo;
    count_message(2);
    count_moved(static_cast<std::uint64_t>(std::llabs(diff) / 2));
  }
}

void DimensionExchange::end_step(std::uint32_t t) {
  if (params_.one_dimension_per_step) {
    exchange_dimension(t % dimension_);
  } else {
    for (unsigned k = 0; k < dimension_; ++k) exchange_dimension(k);
  }
}

}  // namespace dlb
