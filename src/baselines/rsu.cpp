#include "baselines/rsu.hpp"

#include <cmath>
#include <cstdlib>

#include "support/check.hpp"

namespace dlb {

RudolphUpfal::RudolphUpfal(std::uint32_t processors, Params params,
                           std::uint64_t seed)
    : loads_(processors, 0), params_(params), rng_(seed) {
  DLB_REQUIRE(processors >= 2, "RSU needs at least two processors");
  DLB_REQUIRE(params_.threshold >= 1, "threshold must be >= 1");
}

void RudolphUpfal::generate(std::uint32_t p) {
  loads_.at(p) += 1;
  maybe_probe(p);
}

bool RudolphUpfal::consume(std::uint32_t p) {
  if (loads_.at(p) == 0) {
    // An empty processor still probes (probability 1), which is how the
    // scheme acquires work for starved processors.
    maybe_probe(p);
    if (loads_[p] == 0) {
      count_failure();
      return false;
    }
  }
  loads_[p] -= 1;
  maybe_probe(p);
  return true;
}

void RudolphUpfal::end_step(std::uint32_t t) {
  (void)t;
  for (std::uint32_t p = 0; p < loads_.size(); ++p) maybe_probe(p);
}

void RudolphUpfal::maybe_probe(std::uint32_t p) {
  const std::int64_t l = loads_[p];
  const double probability = l <= 1 ? 1.0 : 1.0 / static_cast<double>(l);
  if (!rng_.bernoulli(probability)) return;
  auto q = static_cast<std::uint32_t>(rng_.below(loads_.size() - 1));
  if (q >= p) ++q;  // uniform over the other processors
  count_message(2);  // probe + load report
  const std::int64_t diff = loads_[p] - loads_[q];
  if (std::llabs(diff) <= params_.threshold) return;
  const std::int64_t pool = loads_[p] + loads_[q];
  const std::int64_t lo = pool / 2;
  const std::int64_t hi = pool - lo;
  const std::uint64_t moved =
      static_cast<std::uint64_t>(std::llabs(diff) / 2);
  // The heavier side keeps the odd packet.
  if (loads_[p] > loads_[q]) {
    loads_[p] = hi;
    loads_[q] = lo;
  } else {
    loads_[p] = lo;
    loads_[q] = hi;
  }
  count_moved(moved);
}

}  // namespace dlb
