#include "baselines/gradient.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dlb {

GradientModel::GradientModel(const Topology& topology, Params params)
    : topology_(topology),
      params_(params),
      loads_(topology.size(), 0),
      unreachable_(topology.diameter() + 1) {
  DLB_REQUIRE(params_.low_watermark >= 0, "low watermark must be >= 0");
  DLB_REQUIRE(params_.high_watermark > params_.low_watermark,
              "high watermark must exceed the low watermark");
  DLB_REQUIRE(params_.push_per_step >= 1, "must push at least one packet");
  proximity_.assign(topology_.size(), unreachable_);
}

void GradientModel::generate(std::uint32_t p) { loads_.at(p) += 1; }

bool GradientModel::consume(std::uint32_t p) {
  if (loads_.at(p) == 0) {
    count_failure();
    return false;
  }
  loads_[p] -= 1;
  return true;
}

unsigned GradientModel::proximity(std::uint32_t p) const {
  DLB_REQUIRE(p < proximity_.size(), "processor id out of range");
  return proximity_[p];
}

void GradientModel::update_proximities() {
  // One relaxation sweep per step from the previous estimates: pressure
  // information propagates at one hop per time step, as in the original
  // asynchronous scheme.
  const std::vector<unsigned> previous = proximity_;
  for (ProcId u = 0; u < topology_.size(); ++u) {
    if (loads_[u] <= params_.low_watermark) {
      proximity_[u] = 0;
      continue;
    }
    unsigned best = unreachable_;
    for (ProcId v : topology_.neighbors(u))
      best = std::min(best, previous[v]);
    proximity_[u] =
        best >= unreachable_ ? unreachable_ : best + 1;
  }
}

void GradientModel::end_step(std::uint32_t t) {
  (void)t;
  update_proximities();
  // Overloaded processors push down the gradient (simultaneous sweep on
  // the pre-step snapshot).
  const std::vector<std::int64_t> snapshot = loads_;
  for (ProcId u = 0; u < topology_.size(); ++u) {
    if (snapshot[u] < params_.high_watermark) continue;
    // Find the neighbor with minimal proximity; require strict descent
    // so packets cannot oscillate on a plateau.
    ProcId target = u;
    unsigned best = proximity_[u];
    for (ProcId v : topology_.neighbors(u)) {
      if (proximity_[v] < best) {
        best = proximity_[v];
        target = v;
      }
    }
    if (target == u) continue;
    const std::int64_t amount =
        std::min(params_.push_per_step, loads_[u]);
    if (amount <= 0) continue;
    loads_[u] -= amount;
    loads_[target] += amount;
    count_message();
    count_moved(static_cast<std::uint64_t>(amount));
  }
}

}  // namespace dlb
