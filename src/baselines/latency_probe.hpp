// Decorator wiring a LatencyTracker into any LoadBalancer.
//
// run_trace drives strategies through the LoadBalancer interface only;
// the probe interposes on that interface, stamping every generate with
// the current virtual step and draining the tracker's FIFO on every
// *successful* consume (failed consumes serve nothing, so they leave
// the backlog aging — which is exactly how a policy's stranded load
// shows up in the tail).  The probe forwards everything else untouched
// and reads its clock from the end_step(t) stream, so it composes with
// any strategy without that strategy knowing it is being measured.
#pragma once

#include "baselines/balancer.hpp"
#include "metrics/latency.hpp"

namespace dlb {

class LatencyProbe final : public LoadBalancer {
 public:
  /// `inner` must outlive the probe.
  explicit LatencyProbe(LoadBalancer& inner) : inner_(inner) {}

  std::string name() const override { return inner_.name(); }

  void begin_run() override {
    // Fresh measurement per run: a reused probe must not carry the old
    // run's clock or its pending cohorts (their stamps are from the old
    // timeline, so new consumes would drain them at nonsense latencies —
    // or trip the tracker's FIFO-order guards).
    now_ = 0;
    tracker_.reset();
    inner_.begin_run();
  }

  void generate(std::uint32_t p) override {
    tracker_.on_generate(now_);
    inner_.generate(p);
  }

  bool consume(std::uint32_t p) override {
    const bool ok = inner_.consume(p);
    // A reused inner balancer may serve backlog that predates this
    // measurement window (begin_run resets the tracker, not the
    // balancer); such packets have no arrival stamp here, so they are
    // excluded from the distribution rather than guessed at.
    if (ok && tracker_.pending() > 0) tracker_.on_consume(now_);
    return ok;
  }

  void end_step(std::uint32_t t) override {
    inner_.end_step(t);
    now_ = t + 1;
  }

  std::vector<std::int64_t> loads() const override { return inner_.loads(); }

  const LatencyTracker& latency() const { return tracker_; }
  LoadBalancer& inner() { return inner_; }

 private:
  LoadBalancer& inner_;
  LatencyTracker tracker_;
  std::uint32_t now_ = 0;
};

}  // namespace dlb
