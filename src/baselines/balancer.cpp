#include "baselines/balancer.hpp"

namespace dlb {

std::int64_t LoadBalancer::total_load() const {
  std::int64_t total = 0;
  for (std::int64_t l : loads()) total += l;
  return total;
}

void run_trace(
    LoadBalancer& balancer, const Trace& trace,
    const std::function<void(std::uint32_t, const std::vector<std::int64_t>&)>&
        on_step) {
  balancer.begin_run();
  for (std::uint32_t t = 0; t < trace.horizon(); ++t) {
    for (std::uint32_t p = 0; p < trace.processors(); ++p) {
      const WorkEvent ev = trace.at(p, t);
      if (ev.generate) balancer.generate(p);
      if (ev.consume) balancer.consume(p);
    }
    balancer.end_step(t);
    if (on_step) on_step(t, balancer.loads());
  }
}

}  // namespace dlb
