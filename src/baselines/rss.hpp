// RSS-style indirection-table balancer — the industry-standard
// table-driven approach (NIC receive-side scaling, Maglev-style
// consistent-table frontends): a fixed power-of-two bucket table maps
// load classes (flows) to processors; packets are steered at arrival
// time by hashing their class into the table, and a controller reacts
// to observed imbalance by greedily remapping the biggest-flow buckets
// away from the most loaded processor.
//
// Contrasts with the paper's randomized-partner algorithm on three
// axes the serving bench makes visible:
//   - steering is data-plane-free (the hash costs nothing and moves no
//     packets), so its message/migration counters stay near zero;
//   - already-queued backlog is NOT migrated on reassignment (real RSS
//     cannot reach into NIC/processor queues), so a flash crowd's
//     backlog drains only at the victim's service rate — that is where
//     the tail latency diverges under skew;
//   - reassignment granularity is a whole bucket, so a single flow
//     bigger than the per-processor capacity cannot be split.
#pragma once

#include "baselines/balancer.hpp"
#include "support/rng.hpp"

namespace dlb {

class RssIndirection final : public LoadBalancer {
 public:
  struct Params {
    /// Indirection-table size; 0 = smallest power of two >= 4n
    /// (clamped to at least 128, like NIC tables).  Must be a power of
    /// two when given.
    std::uint32_t buckets = 0;
    /// Rebalance when max_load / avg_load exceeds this.
    double trigger = 1.5;
    /// Steps between imbalance checks (control-plane reaction time).
    std::uint32_t check_period = 10;
    /// Buckets remapped per triggered check.
    std::uint32_t max_reassign = 4;
    /// Per-check decay of the per-bucket flow counters (EWMA): rate
    /// estimates follow the current mix instead of the whole history.
    double decay = 0.5;
  };

  RssIndirection(std::uint32_t processors, Params params, std::uint64_t seed);

  std::string name() const override { return "rss-indirection"; }
  void generate(std::uint32_t p) override;
  bool consume(std::uint32_t p) override;
  void end_step(std::uint32_t t) override;
  std::vector<std::int64_t> loads() const override { return loads_; }

  /// Control-plane bucket remaps executed so far (each also counts one
  /// message in the LoadBalancer counters).
  std::uint64_t reassignments() const { return reassignments_; }
  std::uint32_t bucket_count() const {
    return static_cast<std::uint32_t>(table_.size());
  }
  /// The bucket a load class hashes into (exposed for tests).
  std::uint32_t bucket_of(std::uint32_t flow) const;

 private:
  void maybe_rebalance();

  std::vector<std::int64_t> loads_;       // per-processor queue depth
  std::vector<std::uint32_t> table_;      // bucket -> processor
  std::vector<double> bucket_flow_;       // EWMA packets per bucket
  Params params_;
  std::uint64_t hash_salt_;
  std::uint64_t reassignments_ = 0;
};

}  // namespace dlb
