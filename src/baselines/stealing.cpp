#include "baselines/stealing.hpp"

#include "support/check.hpp"

namespace dlb {

WorkStealing::WorkStealing(std::uint32_t processors, Params params,
                           std::uint64_t seed)
    : loads_(processors, 0), params_(params), rng_(seed) {
  DLB_REQUIRE(processors >= 2, "stealing needs at least two processors");
  DLB_REQUIRE(params_.max_probes >= 1, "need at least one probe");
}

void WorkStealing::generate(std::uint32_t p) { loads_.at(p) += 1; }

bool WorkStealing::consume(std::uint32_t p) {
  if (loads_.at(p) == 0) {
    for (std::uint32_t probe = 0; probe < params_.max_probes; ++probe) {
      auto victim = static_cast<std::uint32_t>(
          rng_.below(loads_.size() - 1));
      if (victim >= p) ++victim;
      count_message(2);  // steal request + reply
      if (loads_[victim] == 0) continue;
      const std::int64_t stolen = (loads_[victim] + 1) / 2;
      loads_[victim] -= stolen;
      loads_[p] += stolen;
      count_moved(static_cast<std::uint64_t>(stolen));
      ++steals_;
      break;
    }
    if (loads_[p] == 0) {
      count_failure();
      return false;
    }
  }
  loads_[p] -= 1;
  return true;
}

}  // namespace dlb
