#include "baselines/adapter.hpp"

namespace dlb {

DlbAdapter::DlbAdapter(std::uint32_t processors, BalancerConfig config,
                       std::uint64_t seed)
    : system_(std::make_unique<System>(processors, config, seed)) {}

std::string DlbAdapter::name() const {
  return "dlb(" + system_->config().describe() + ")";
}

void DlbAdapter::generate(std::uint32_t p) {
  system_->generate(p);
  sync_costs();
}

bool DlbAdapter::consume(std::uint32_t p) {
  const bool ok = system_->consume(p);
  if (!ok) count_failure();
  sync_costs();
  return ok;
}

std::vector<std::int64_t> DlbAdapter::loads() const {
  return system_->loads();
}

void DlbAdapter::sync_costs() {
  // Comparisons against label-free baselines use the *net* flow: the
  // physical migration implied by total-load changes.  The gross
  // class-labeled traffic remains available via system().costs().
  const CostTotals& totals = system_->costs().totals();
  if (totals.packets_moved_net > moved_baseline_) {
    count_moved(totals.packets_moved_net - moved_baseline_);
    moved_baseline_ = totals.packets_moved_net;
  }
  if (totals.messages > messages_baseline_) {
    count_message(totals.messages - messages_baseline_);
    messages_baseline_ = totals.messages;
  }
}

}  // namespace dlb
