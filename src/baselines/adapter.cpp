#include "baselines/adapter.hpp"

#include "support/check.hpp"

namespace dlb {

DlbAdapter::DlbAdapter(std::uint32_t processors, BalancerConfig config,
                       std::uint64_t seed)
    : system_(std::make_unique<System>(processors, config, seed)) {}

std::string DlbAdapter::name() const {
  return "dlb(" + system_->config().describe() + ")";
}

void DlbAdapter::begin_run() {
  // Re-anchor the delta baselines to the system's current totals.  A
  // reused adapter (or one whose System was manipulated between runs)
  // otherwise starts the run with stale baselines: totals below the
  // baseline would silently suppress counting until the gap refills,
  // undercounting the run's true cost.
  const CostTotals& totals = system_->costs().totals();
  moved_baseline_ = totals.packets_moved_net;
  messages_baseline_ = totals.messages;
}

void DlbAdapter::generate(std::uint32_t p) {
  system_->generate(p);
  sync_costs();
}

bool DlbAdapter::consume(std::uint32_t p) {
  const bool ok = system_->consume(p);
  if (!ok) count_failure();
  sync_costs();
  return ok;
}

std::vector<std::int64_t> DlbAdapter::loads() const {
  return system_->loads();
}

void DlbAdapter::sync_costs() {
  // Comparisons against label-free baselines use the *net* flow: the
  // physical migration implied by total-load changes.  The gross
  // class-labeled traffic remains available via system().costs().
  // Within a run the system's totals are monotone; a totals value below
  // the baseline means the baseline is stale (reuse without begin_run,
  // or an external reset mid-run) and deltas would silently vanish —
  // fail loudly instead.
  const CostTotals& totals = system_->costs().totals();
  DLB_REQUIRE(totals.packets_moved_net >= moved_baseline_ &&
                  totals.messages >= messages_baseline_,
              "DlbAdapter cost totals moved backwards within a run; "
              "baselines are stale (missing begin_run?)");
  if (totals.packets_moved_net > moved_baseline_) {
    count_moved(totals.packets_moved_net - moved_baseline_);
    moved_baseline_ = totals.packets_moved_net;
  }
  if (totals.messages > messages_baseline_) {
    count_message(totals.messages - messages_baseline_);
    messages_baseline_ = totals.messages;
  }
}

}  // namespace dlb
