// Trivial reference strategies.
//
// NoBalancing is the null policy (what the application would experience
// without any balancer).  RandomScatter is §5's cautionary example: every
// processor ships its whole queue to one uniformly random processor per
// step, which makes all *expected* loads equal while the variance is
// enormous — the paper uses it to argue that expectation bounds alone do
// not certify a balancing algorithm.
#pragma once

#include "baselines/balancer.hpp"
#include "support/rng.hpp"

namespace dlb {

class NoBalancing final : public LoadBalancer {
 public:
  explicit NoBalancing(std::uint32_t processors);

  std::string name() const override { return "none"; }
  void generate(std::uint32_t p) override;
  bool consume(std::uint32_t p) override;
  std::vector<std::int64_t> loads() const override { return loads_; }

 private:
  std::vector<std::int64_t> loads_;
};

class RandomScatter final : public LoadBalancer {
 public:
  RandomScatter(std::uint32_t processors, std::uint64_t seed);

  std::string name() const override { return "random-scatter"; }
  void generate(std::uint32_t p) override;
  bool consume(std::uint32_t p) override;
  void end_step(std::uint32_t t) override;
  std::vector<std::int64_t> loads() const override { return loads_; }

 private:
  std::vector<std::int64_t> loads_;
  Rng rng_;
};

}  // namespace dlb
