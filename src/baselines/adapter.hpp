// Adapter exposing the paper's algorithm (core/System) through the
// LoadBalancer comparison interface, so the comparison benches can drive
// every strategy — including ours — through one code path.
#pragma once

#include <memory>

#include "baselines/balancer.hpp"
#include "core/system.hpp"

namespace dlb {

class DlbAdapter final : public LoadBalancer {
 public:
  DlbAdapter(std::uint32_t processors, BalancerConfig config,
             std::uint64_t seed);

  std::string name() const override;
  void begin_run() override;
  void generate(std::uint32_t p) override;
  bool consume(std::uint32_t p) override;
  std::vector<std::int64_t> loads() const override;

  System& system() { return *system_; }
  const System& system() const { return *system_; }

 private:
  std::unique_ptr<System> system_;
  std::uint64_t moved_baseline_ = 0;
  std::uint64_t messages_baseline_ = 0;
  void sync_costs();
};

}  // namespace dlb
