#include "baselines/rss.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dlb {

namespace {

std::uint32_t next_pow2(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

RssIndirection::RssIndirection(std::uint32_t processors, Params params,
                               std::uint64_t seed)
    : loads_(processors, 0), params_(params), hash_salt_(seed) {
  DLB_REQUIRE(processors >= 1, "RSS needs at least one processor");
  DLB_REQUIRE(params_.trigger > 1.0, "trigger must exceed 1 (max/avg)");
  DLB_REQUIRE(params_.check_period >= 1, "check_period must be positive");
  DLB_REQUIRE(params_.decay >= 0.0 && params_.decay <= 1.0,
              "decay out of [0,1]");
  std::uint32_t buckets = params_.buckets;
  if (buckets == 0) buckets = std::max(128u, next_pow2(4 * processors));
  DLB_REQUIRE((buckets & (buckets - 1)) == 0,
              "bucket table size must be a power of two");
  table_.resize(buckets);
  bucket_flow_.assign(buckets, 0.0);
  // Round-robin initial spread, then a seeded shuffle so the
  // bucket->processor map carries no alignment with the flow hash.
  for (std::uint32_t b = 0; b < buckets; ++b) table_[b] = b % processors;
  Rng rng(seed);
  rng.shuffle(table_);
}

std::uint32_t RssIndirection::bucket_of(std::uint32_t flow) const {
  // Same SplitMix64 mixing as ServingWorkload::session_processor so the
  // steering hash is as good as the demand hash.
  SplitMix64 mix(hash_salt_ ^ (std::uint64_t{flow} * 0x9e3779b97f4a7c15ULL));
  return static_cast<std::uint32_t>(mix.next() &
                                    (std::uint64_t{table_.size()} - 1));
}

void RssIndirection::generate(std::uint32_t p) {
  // The arrival processor IS the flow's load class (the demand traces
  // key arrivals by class); the table steers it to its serving
  // processor.  Steering happens before queueing, so it moves no queued
  // packet and costs no message — that is the point of the data-plane
  // table.
  const std::uint32_t b = bucket_of(p);
  ++loads_[table_[b]];
  bucket_flow_[b] += 1.0;
}

bool RssIndirection::consume(std::uint32_t p) {
  if (loads_[p] <= 0) {
    count_failure();
    return false;
  }
  --loads_[p];
  return true;
}

void RssIndirection::end_step(std::uint32_t t) {
  if ((t + 1) % params_.check_period != 0) return;
  maybe_rebalance();
  for (double& f : bucket_flow_) f *= (1.0 - params_.decay);
}

void RssIndirection::maybe_rebalance() {
  const auto n = static_cast<std::uint32_t>(loads_.size());
  if (n < 2) return;
  for (std::uint32_t round = 0; round < params_.max_reassign; ++round) {
    std::int64_t total = 0;
    std::uint32_t hottest = 0;
    std::uint32_t coldest = 0;
    for (std::uint32_t p = 0; p < n; ++p) {
      total += loads_[p];
      if (loads_[p] > loads_[hottest]) hottest = p;
      if (loads_[p] < loads_[coldest]) coldest = p;
    }
    const double avg =
        static_cast<double>(total) / static_cast<double>(n);
    if (avg <= 0.0 ||
        static_cast<double>(loads_[hottest]) <= params_.trigger * avg)
      return;
    // Greedy biggest-flow reassignment: among the buckets currently
    // mapped to the hottest processor, remap the one carrying the most
    // (EWMA) traffic to the coldest processor.  Future arrivals follow;
    // queued backlog stays (real RSS cannot migrate it).
    std::int32_t best = -1;
    for (std::uint32_t b = 0; b < table_.size(); ++b) {
      if (table_[b] != hottest) continue;
      if (best < 0 || bucket_flow_[b] >
                          bucket_flow_[static_cast<std::uint32_t>(best)])
        best = static_cast<std::int32_t>(b);
    }
    if (best < 0) return;  // hot load is all backlog, no inbound bucket
    table_[static_cast<std::uint32_t>(best)] = coldest;
    ++reassignments_;
    count_message();  // one control-plane table update
  }
}

}  // namespace dlb
