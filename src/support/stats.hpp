// Streaming and batch statistics.
//
// Every figure in the paper aggregates 100 randomized runs into expected /
// minimum / maximum curves, and §5 needs second moments (the "variation
// density" VD = sqrt(E[X²] − E[X]²) / E[X]).  RunningMoments implements
// Welford's numerically stable online algorithm with Chan's parallel merge
// so per-run statistics can be combined across runs and across threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace dlb {

/// Online mean / variance / extrema accumulator (Welford).
class RunningMoments {
 public:
  void add(double x);

  /// Chan et al. parallel combination: *this <- *this ∪ other.
  void merge(const RunningMoments& other);

  void reset();

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divides by n).
  double variance() const;
  /// Sample variance (divides by n-1); 0 for fewer than two samples.
  double sample_variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// The paper's variation density: stddev / mean (coefficient of
  /// variation).  Returns 0 when the mean is 0.
  double variation_density() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Five-number-style batch summary of a sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

/// Computes a Summary of `sample` (copies and sorts; sample may be empty).
Summary summarize(std::vector<double> sample);

/// Linear-interpolated percentile of a *sorted* sample, q in [0, 1].
double percentile_sorted(const std::vector<double>& sorted, double q);

/// Per-time-step aggregation across repeated runs: for each step t keeps
/// the running mean and the most extreme single-processor values ever
/// observed — exactly the avg/min/max curves of Figures 7–10.
class SeriesAggregator {
 public:
  explicit SeriesAggregator(std::size_t steps);

  /// Record one observation for step t (t < steps()).
  void add(std::size_t t, double value);

  std::size_t steps() const { return cells_.size(); }
  double mean(std::size_t t) const;
  double min(std::size_t t) const;
  double max(std::size_t t) const;
  double stddev(std::size_t t) const;
  const RunningMoments& at(std::size_t t) const;

  /// Cell-wise merge of another aggregator over the same horizon
  /// (Chan's combination; used by the parallel experiment runner).
  void merge(const SeriesAggregator& other);

 private:
  std::vector<RunningMoments> cells_;
};

}  // namespace dlb
