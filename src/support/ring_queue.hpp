// Growable single-threaded ring queue: deque semantics, vector storage.
//
// The mailbox queues (runtime/mailbox.hpp, mp::World::Mailbox, the async
// engine's per-shard FIFOs) oscillate between empty and a small bounded
// depth in steady state.  std::deque keeps at least one heap chunk alive
// per queue and allocates fresh ones when its internal map grows;
// RingQueue instead keeps a single power-of-two buffer that is reused
// forever — after the queue has once reached its high-water depth, no
// push or pop ever touches the allocator again, which is the property
// the zero-allocation gate (obs/alloc.hpp) asserts.
//
// Semantics: FIFO push_back/front/pop_front plus random access by
// logical index and middle erase (used by the mp mailbox's filtered
// receive).  Not thread-safe; callers lock around it exactly as they did
// around std::deque.  T must be default-constructible and movable; slots
// are recycled by move-assignment, so a T that itself pools its storage
// (e.g. MpMessage's payload) keeps that storage through the recycle.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace dlb {

template <typename T>
class RingQueue {
 public:
  RingQueue() = default;

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return slots_.size(); }

  /// Ensures capacity for at least `n` elements without reallocation.
  void reserve(std::size_t n) {
    if (n > slots_.size()) grow(round_up_pow2(n));
  }

  void push_back(T value) {
    if (count_ == slots_.size()) grow(slots_.empty() ? kMinCapacity
                                                     : 2 * slots_.size());
    slots_[index(count_)] = std::move(value);
    ++count_;
  }

  T& front() {
    DLB_REQUIRE(count_ > 0, "front() on empty RingQueue");
    return slots_[head_];
  }
  const T& front() const {
    DLB_REQUIRE(count_ > 0, "front() on empty RingQueue");
    return slots_[head_];
  }

  T& operator[](std::size_t i) {
    DLB_REQUIRE(i < count_, "RingQueue index out of range");
    return slots_[index(i)];
  }
  const T& operator[](std::size_t i) const {
    DLB_REQUIRE(i < count_, "RingQueue index out of range");
    return slots_[index(i)];
  }

  /// Removes and returns the oldest element.  The vacated slot keeps its
  /// moved-from value until overwritten (storage reuse, not a leak).
  T pop_front() {
    DLB_REQUIRE(count_ > 0, "pop_front() on empty RingQueue");
    T out = std::move(slots_[head_]);
    head_ = (head_ + 1) & mask();
    --count_;
    return out;
  }

  /// Removes the element at logical index `i`, preserving the order of
  /// the rest.  Shifts whichever side is shorter: O(min(i, size-i))
  /// moves, so matching the front (the common mailbox case) stays O(1).
  void erase(std::size_t i) {
    DLB_REQUIRE(i < count_, "RingQueue erase out of range");
    if (i < count_ - i - 1) {
      for (std::size_t k = i; k > 0; --k)
        slots_[index(k)] = std::move(slots_[index(k - 1)]);
      head_ = (head_ + 1) & mask();
    } else {
      for (std::size_t k = i + 1; k < count_; ++k)
        slots_[index(k - 1)] = std::move(slots_[index(k)]);
    }
    --count_;
  }

  /// Drops every element; keeps the storage.
  void clear() {
    for (std::size_t k = 0; k < count_; ++k) slots_[index(k)] = T{};
    head_ = 0;
    count_ = 0;
  }

 private:
  static constexpr std::size_t kMinCapacity = 8;

  std::size_t mask() const { return slots_.size() - 1; }
  std::size_t index(std::size_t i) const { return (head_ + i) & mask(); }

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t c = kMinCapacity;
    while (c < n) c *= 2;
    return c;
  }

  void grow(std::size_t new_capacity) {
    std::vector<T> fresh(new_capacity);
    for (std::size_t k = 0; k < count_; ++k)
      fresh[k] = std::move(slots_[index(k)]);
    slots_.swap(fresh);
    head_ = 0;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace dlb
