#include "support/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/check.hpp"

namespace dlb {

CliOptions& CliOptions::add_int(const std::string& name, std::int64_t def,
                                const std::string& help) {
  DLB_REQUIRE(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{Kind::Int, std::to_string(def), help};
  order_.push_back(name);
  return *this;
}

CliOptions& CliOptions::add_double(const std::string& name, double def,
                                   const std::string& help) {
  DLB_REQUIRE(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{Kind::Double, std::to_string(def), help};
  order_.push_back(name);
  return *this;
}

CliOptions& CliOptions::add_string(const std::string& name,
                                   const std::string& def,
                                   const std::string& help) {
  DLB_REQUIRE(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{Kind::String, def, help};
  order_.push_back(name);
  return *this;
}

CliOptions& CliOptions::add_flag(const std::string& name,
                                 const std::string& help) {
  DLB_REQUIRE(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{Kind::Flag, "0", help};
  order_.push_back(name);
  return *this;
}

bool CliOptions::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      print_usage(argv[0]);
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      std::fprintf(stderr, "unknown option: --%s\n", name.c_str());
      print_usage(argv[0]);
      return false;
    }
    if (it->second.kind == Kind::Flag) {
      it->second.value = has_value ? value : "1";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "option --%s needs a value\n", name.c_str());
        return false;
      }
      value = argv[++i];
    }
    // Validate numeric options eagerly so typos fail at startup.
    char* end = nullptr;
    if (it->second.kind == Kind::Int) {
      (void)std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "option --%s expects an integer, got '%s'\n",
                     name.c_str(), value.c_str());
        return false;
      }
    } else if (it->second.kind == Kind::Double) {
      (void)std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "option --%s expects a number, got '%s'\n",
                     name.c_str(), value.c_str());
        return false;
      }
    }
    it->second.value = value;
  }
  return true;
}

const CliOptions::Option& CliOptions::find(const std::string& name,
                                           Kind kind) const {
  auto it = options_.find(name);
  DLB_REQUIRE(it != options_.end(), "undeclared option: " + name);
  DLB_REQUIRE(it->second.kind == kind, "option kind mismatch: " + name);
  return it->second;
}

std::int64_t CliOptions::get_int(const std::string& name) const {
  return std::strtoll(find(name, Kind::Int).value.c_str(), nullptr, 10);
}

double CliOptions::get_double(const std::string& name) const {
  return std::strtod(find(name, Kind::Double).value.c_str(), nullptr);
}

const std::string& CliOptions::get_string(const std::string& name) const {
  return find(name, Kind::String).value;
}

bool CliOptions::get_flag(const std::string& name) const {
  return find(name, Kind::Flag).value != "0";
}

void CliOptions::print_usage(const std::string& program) const {
  std::fprintf(stderr, "usage: %s [--option=value ...]\n", program.c_str());
  for (const auto& name : order_) {
    const Option& o = options_.at(name);
    const char* kind = o.kind == Kind::Int      ? "int"
                       : o.kind == Kind::Double ? "float"
                       : o.kind == Kind::String ? "string"
                                                : "flag";
    std::fprintf(stderr, "  --%-18s %-7s default=%-10s %s\n", name.c_str(),
                 kind, o.value.c_str(), o.help.c_str());
  }
}

}  // namespace dlb
