// Bounded lock-free single-producer/single-consumer ring.
//
// The asynchronous step engine wires one ring per ordered shard pair:
// shard a's thread is the only producer of ring(a, b) and shard b's the
// only consumer, which is exactly the SPSC contract.  push() and pop()
// are wait-free (one acquire load + one release store each); a full
// ring rejects the push and the caller keeps the message in a local
// pending buffer, so the ring never blocks either side.
//
// Indices grow without wrap-around (64-bit: centuries at any realistic
// message rate) and are masked into the power-of-two buffer, so
// full/empty need no separate flag: the ring is empty when head == tail
// and full when tail - head == capacity.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dlb {

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity = 1024) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return buffer_.size(); }

  /// Producer side.  Returns false when the ring is full (the element is
  /// not consumed).
  bool push(const T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == buffer_.size())
      return false;
    buffer_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Returns false when the ring is empty.
  bool pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = buffer_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side emptiness check (exact for the consumer: only it
  /// advances head, and a false negative just means a message arrived
  /// concurrently).
  bool empty() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  // Producer and consumer indices on separate cache lines so the two
  // sides never false-share.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::vector<T> buffer_;
  std::size_t mask_ = 0;
};

}  // namespace dlb
