// Lightweight contract checking used throughout the library.
//
// The simulator is the measurement instrument for every experiment in the
// paper reproduction, so internal invariants are checked in all build
// types; a violated invariant would silently corrupt the data a bench
// reports. Checks are cheap (integer comparisons) relative to the work
// they guard.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dlb {

/// Thrown when a DLB_REQUIRE / DLB_ENSURE contract is violated.
class contract_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw contract_error(os.str());
}
}  // namespace detail

}  // namespace dlb

/// Precondition: argument/state validation at API boundaries.
#define DLB_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::dlb::detail::contract_fail("precondition", #cond, __FILE__,         \
                                   __LINE__, (msg));                        \
  } while (0)

/// Postcondition / internal invariant.
#define DLB_ENSURE(cond, msg)                                               \
  do {                                                                      \
    if (!(cond))                                                            \
      ::dlb::detail::contract_fail("invariant", #cond, __FILE__, __LINE__,  \
                                   (msg));                                  \
  } while (0)
