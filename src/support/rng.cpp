#include "support/rng.hpp"

#include "support/check.hpp"

namespace dlb {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // All-zero state is the one invalid state for xoshiro; SplitMix64 cannot
  // produce four consecutive zeros from any seed, but guard regardless.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  DLB_REQUIRE(bound > 0, "Rng::below requires a positive bound");
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  DLB_REQUIRE(lo <= hi, "Rng::range requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 2^64 range (lo == INT64_MIN, hi == INT64_MAX).
  const std::uint64_t off = (span == 0) ? next() : below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + off);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DLB_REQUIRE(lo <= hi, "Rng::uniform requires lo <= hi");
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Rng Rng::split() { return Rng(next() ^ 0x9e3779b97f4a7c15ULL); }

Rng Rng::from_state(const std::array<std::uint64_t, 4>& state) {
  DLB_REQUIRE(state[0] || state[1] || state[2] || state[3],
              "the all-zero state is invalid for xoshiro256**");
  Rng rng(0);
  rng.s_ = state;
  return rng;
}

std::vector<std::uint32_t> Rng::sample_distinct(std::uint32_t n,
                                                std::uint32_t k,
                                                std::uint32_t exclude) {
  std::vector<std::uint32_t> out;
  sample_distinct_into(out, n, k, exclude);
  return out;
}

void Rng::sample_distinct_into(std::vector<std::uint32_t>& out,
                               std::uint32_t n, std::uint32_t k,
                               std::uint32_t exclude) {
  const std::uint32_t avail = (exclude < n) ? n - 1 : n;
  DLB_REQUIRE(k <= avail, "sample_distinct: not enough values to sample");
  // Sample from a conceptual array of the available values: if `exclude`
  // is in range, value v >= exclude maps to v + 1.
  auto remap = [&](std::uint64_t v) -> std::uint32_t {
    auto value = static_cast<std::uint32_t>(v);
    return (exclude < n && value >= exclude) ? value + 1 : value;
  };
  out.clear();
  out.reserve(k);
  // Floyd's algorithm over the remapped universe of size `avail`.
  for (std::uint32_t j = avail - k; j < avail; ++j) {
    const std::uint32_t t = remap(below(j + 1));
    bool seen = false;
    for (std::uint32_t chosen : out) {
      if (chosen == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? remap(j) : t);
  }
}

}  // namespace dlb
