#include "support/plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace dlb {

void render_plot(std::ostream& os, const std::vector<PlotSeries>& series,
                 const PlotOptions& options) {
  DLB_REQUIRE(options.width >= 8 && options.height >= 4,
              "plot area too small");
  double lo = options.y_min;
  double hi = options.y_max;
  std::size_t max_len = 0;
  bool any = false;
  if (lo == hi) {
    lo = std::numeric_limits<double>::infinity();
    hi = -lo;
    for (const auto& s : series) {
      for (double v : s.values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
  }
  for (const auto& s : series) {
    if (!s.values.empty()) any = true;
    max_len = std::max(max_len, s.values.size());
  }
  DLB_REQUIRE(any, "nothing to plot");
  if (hi <= lo) hi = lo + 1.0;  // flat data: give the range some height

  // canvas[row][col]; row 0 is the top.
  std::vector<std::string> canvas(options.height,
                                  std::string(options.width, ' '));
  for (const auto& s : series) {
    if (s.values.empty()) continue;
    for (std::size_t col = 0; col < options.width; ++col) {
      const std::size_t idx =
          s.values.size() == 1
              ? 0
              : col * (s.values.size() - 1) / (options.width - 1);
      const double v = s.values[idx];
      double frac = (v - lo) / (hi - lo);
      frac = std::clamp(frac, 0.0, 1.0);
      const auto row = static_cast<std::size_t>(std::llround(
          (1.0 - frac) * static_cast<double>(options.height - 1)));
      canvas[row][col] = s.glyph;
    }
  }

  auto format_tick = [](double v) {
    std::ostringstream tick;
    tick << std::setprecision(4) << std::defaultfloat << v;
    return tick.str();
  };
  const std::string top = format_tick(hi);
  const std::string bottom = format_tick(lo);
  const std::size_t margin = std::max(top.size(), bottom.size()) + 1;

  if (!options.y_label.empty())
    os << std::string(margin, ' ') << options.y_label << '\n';
  for (std::size_t row = 0; row < options.height; ++row) {
    std::string tick;
    if (row == 0) tick = top;
    if (row == options.height - 1) tick = bottom;
    os << std::setw(static_cast<int>(margin)) << tick << '|' << canvas[row]
       << '\n';
  }
  os << std::string(margin, ' ') << '+'
     << std::string(options.width, '-') << ' ' << options.x_label << " ["
     << 0 << ".." << (max_len ? max_len - 1 : 0) << "]\n";
  os << std::string(margin, ' ');
  for (const auto& s : series) {
    if (s.values.empty()) continue;
    os << ' ' << s.glyph << '=' << s.label;
  }
  os << '\n';
}

}  // namespace dlb
