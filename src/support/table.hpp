// Plain-text table rendering for the bench harnesses.
//
// Every bench binary regenerates one of the paper's tables or figure
// series as rows on stdout; TextTable renders them with aligned columns
// so the output is directly comparable to the paper, and write_csv emits
// the same data machine-readably for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dlb {

class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  TextTable& row();

  TextTable& cell(const std::string& value);
  TextTable& cell(const char* value);
  TextTable& cell(double value, int precision = 3);
  TextTable& cell(long long value);
  TextTable& cell(unsigned long long value);
  TextTable& cell(int value);
  TextTable& cell(std::size_t value);

  std::size_t rows() const { return cells_.size(); }
  std::size_t columns() const { return headers_.size(); }

  /// Renders with a header rule; numeric-looking cells right-aligned.
  void print(std::ostream& os) const;

  /// Comma-separated output, one line per row, header first.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Formats a double with fixed precision (helper shared with benches).
std::string format_double(double value, int precision);

}  // namespace dlb
