#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace dlb {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DLB_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

TextTable& TextTable::row() {
  DLB_REQUIRE(cells_.empty() || cells_.back().size() == headers_.size(),
              "previous row is incomplete");
  cells_.emplace_back();
  cells_.back().reserve(headers_.size());
  return *this;
}

TextTable& TextTable::cell(const std::string& value) {
  DLB_REQUIRE(!cells_.empty(), "call row() before cell()");
  DLB_REQUIRE(cells_.back().size() < headers_.size(), "row already full");
  cells_.back().push_back(value);
  return *this;
}

TextTable& TextTable::cell(const char* value) {
  return cell(std::string(value));
}

TextTable& TextTable::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

TextTable& TextTable::cell(long long value) {
  return cell(std::to_string(value));
}

TextTable& TextTable::cell(unsigned long long value) {
  return cell(std::to_string(value));
}

TextTable& TextTable::cell(int value) { return cell(std::to_string(value)); }

TextTable& TextTable::cell(std::size_t value) {
  return cell(std::to_string(value));
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  bool digit = false;
  for (; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      digit = true;
    } else if (s[i] != '.' && s[i] != 'e' && s[i] != 'E' && s[i] != '-' &&
               s[i] != '+') {
      return false;
    }
  }
  return digit;
}
}  // namespace

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& r : cells_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < r.size() ? r[c] : std::string{};
      os << "  ";
      if (looks_numeric(v)) {
        os << std::string(width[c] - v.size(), ' ') << v;
      } else {
        os << v << std::string(width[c] - v.size(), ' ');
      }
    }
    os << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : cells_) emit_row(r);
}

void TextTable::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << r[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : cells_) emit(r);
}

}  // namespace dlb
