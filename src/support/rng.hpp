// Deterministic pseudo-random number generation.
//
// Every experiment in the paper is an average over repeated randomized
// runs (candidate sets M are drawn uniformly at random, workload phases
// are drawn from intervals).  Reproducibility therefore requires a PRNG
// that is (a) seedable and stable across platforms, (b) splittable into
// independent streams so that the threaded runtime and the sequential
// simulator draw identical decisions, and (c) fast, since a 100-run sweep
// draws hundreds of millions of variates.  We use xoshiro256** seeded via
// SplitMix64, the combination recommended by its authors.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace dlb {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state and to
/// derive independent child seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x1993'aa93'0000'0001ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Unbiased uniform integer in [0, bound) via Lemire's method.
  /// bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Derives an independent child generator; the parent advances.
  Rng split();

  /// Exposes / restores the raw 256-bit state (for checkpointing).
  std::array<std::uint64_t, 4> state() const { return s_; }
  static Rng from_state(const std::array<std::uint64_t, 4>& state);

  /// k distinct values drawn uniformly from {0, ..., n-1} \ {exclude}
  /// (pass exclude >= n to exclude nothing).  Robert Floyd's algorithm:
  /// O(k) expected draws, no O(n) allocation.  Result order is not
  /// uniform over permutations; callers that need a random order should
  /// shuffle.  Requires k <= n - (exclude < n ? 1 : 0).
  std::vector<std::uint32_t> sample_distinct(std::uint32_t n, std::uint32_t k,
                                             std::uint32_t exclude);

  /// sample_distinct into a caller-owned buffer (cleared first): same
  /// draws, same order, but hot loops reuse `out`'s capacity instead of
  /// allocating a fresh vector per call.
  void sample_distinct_into(std::vector<std::uint32_t>& out, std::uint32_t n,
                            std::uint32_t k, std::uint32_t exclude);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace dlb
