// Two-phase spin-then-yield waiter, shared by every busy-wait loop in
// the concurrent runtimes (PR 6 introduced it inside the async engine;
// the socket transport's spin-then-block receive pump reuses it).
//
// Phase 1 is a short burst of architectural pause instructions for the
// multicore case — the event being waited on (another shard's store,
// bytes landing in a socket buffer) is typically nanoseconds away when
// the producer is literally running on another core.  Phase 2 falls
// back to OS yields, which is what keeps waiters functional on
// oversubscribed or single-core hosts: a raw pause loop there burns the
// waiter's whole scheduler quantum before the thread (or process)
// being waited on ever runs.  Callers reset() whenever they make
// progress so the cheap phase is re-entered.
#pragma once

#include <cstdint>
#include <thread>

namespace dlb {

inline void spin_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

class Backoff {
 public:
  void wait() {
    if (spins_ < kSpins) {
      ++spins_;
      spin_pause();
    } else {
      std::this_thread::yield();
    }
  }
  void reset() { spins_ = 0; }

  /// True while still in the cheap pause phase — lets pollers decide
  /// when to switch from non-blocking probes to a blocking wait.
  bool spinning() const { return spins_ < kSpins; }

 private:
  static constexpr std::uint32_t kSpins = 64;
  std::uint32_t spins_ = 0;
};

}  // namespace dlb
