#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace dlb {

void RunningMoments::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningMoments::merge(const RunningMoments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningMoments::reset() { *this = RunningMoments{}; }

double RunningMoments::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningMoments::sample_variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningMoments::stddev() const { return std::sqrt(variance()); }

double RunningMoments::variation_density() const {
  const double m = mean();
  if (m == 0.0) return 0.0;
  return stddev() / m;
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  DLB_REQUIRE(!sorted.empty(), "percentile of an empty sample");
  DLB_REQUIRE(q >= 0.0 && q <= 1.0, "percentile rank must be in [0,1]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(std::vector<double> sample) {
  Summary s;
  s.n = sample.size();
  if (sample.empty()) return s;
  std::sort(sample.begin(), sample.end());
  RunningMoments rm;
  for (double x : sample) rm.add(x);
  s.mean = rm.mean();
  s.stddev = rm.stddev();
  s.min = sample.front();
  s.max = sample.back();
  s.p25 = percentile_sorted(sample, 0.25);
  s.median = percentile_sorted(sample, 0.50);
  s.p75 = percentile_sorted(sample, 0.75);
  return s;
}

SeriesAggregator::SeriesAggregator(std::size_t steps) : cells_(steps) {
  DLB_REQUIRE(steps > 0, "SeriesAggregator needs at least one step");
}

void SeriesAggregator::add(std::size_t t, double value) {
  DLB_REQUIRE(t < cells_.size(), "SeriesAggregator step out of range");
  cells_[t].add(value);
}

double SeriesAggregator::mean(std::size_t t) const { return at(t).mean(); }
double SeriesAggregator::min(std::size_t t) const { return at(t).min(); }
double SeriesAggregator::max(std::size_t t) const { return at(t).max(); }
double SeriesAggregator::stddev(std::size_t t) const { return at(t).stddev(); }

const RunningMoments& SeriesAggregator::at(std::size_t t) const {
  DLB_REQUIRE(t < cells_.size(), "SeriesAggregator step out of range");
  return cells_[t];
}

void SeriesAggregator::merge(const SeriesAggregator& other) {
  DLB_REQUIRE(cells_.size() == other.cells_.size(),
              "cannot merge aggregators over different horizons");
  for (std::size_t t = 0; t < cells_.size(); ++t)
    cells_[t].merge(other.cells_[t]);
}

}  // namespace dlb
