// Terminal plotting: renders series as ASCII charts so the figure
// benches can show the *shape* the paper plots (Figures 6-10) directly
// in their stdout, next to the numeric tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dlb {

/// One plotted series: a label, a glyph, and y-values over an implicit
/// 0..n-1 x-axis.
struct PlotSeries {
  std::string label;
  char glyph = '*';
  std::vector<double> values;
};

struct PlotOptions {
  std::size_t width = 72;   // columns of the plotting area
  std::size_t height = 16;  // rows of the plotting area
  /// Fix the y-range; when min == max the range is computed from data.
  double y_min = 0.0;
  double y_max = 0.0;
  std::string x_label = "step";
  std::string y_label;
};

/// Renders the series into `os`.  X is compressed/stretched to `width`
/// by nearest-index sampling; later series overdraw earlier ones where
/// they collide.  Empty series are skipped; throws if all are empty.
void render_plot(std::ostream& os, const std::vector<PlotSeries>& series,
                 const PlotOptions& options = {});

}  // namespace dlb
