// Minimal command-line option parsing for benches and examples.
//
// Bench binaries accept overrides like --runs=100 --f=1.1 --delta=4 so a
// user can re-run an experiment at different scales without recompiling.
// Syntax: "--name=value" or "--name value"; bare "--help" prints usage.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dlb {

class CliOptions {
 public:
  /// Declares an option with a default value and help text.  Declarations
  /// must precede parse().
  CliOptions& add_int(const std::string& name, std::int64_t def,
                      const std::string& help);
  CliOptions& add_double(const std::string& name, double def,
                         const std::string& help);
  CliOptions& add_string(const std::string& name, const std::string& def,
                         const std::string& help);
  CliOptions& add_flag(const std::string& name, const std::string& help);

  /// Parses argv.  Returns false (after printing usage) when --help was
  /// given or an unknown/ill-formed option was encountered.
  bool parse(int argc, char** argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  void print_usage(const std::string& program) const;

 private:
  enum class Kind { Int, Double, String, Flag };
  struct Option {
    Kind kind;
    std::string value;  // canonical textual value
    std::string help;
  };
  const Option& find(const std::string& name, Kind kind) const;

  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace dlb
