#!/usr/bin/env sh
# Full local gate: build + test the release preset, then again under
# ASan/UBSan, then the threaded suites (mp + runtime, including the
# fault-injection tests) under ThreadSanitizer.  Run from the
# repository root:
#
#   tools/check.sh            # all three presets
#   tools/check.sh default    # release only
#   tools/check.sh asan       # ASan/UBSan only
#   tools/check.sh tsan       # ThreadSanitizer only
#
# Opt-in perf gate (compares bench/micro_core against the committed
# BENCH_core.json baseline, ±30% tolerance — see tools/perf_check.sh):
#
#   DLB_PERF_CHECK=1 tools/check.sh default
set -eu

cd "$(dirname "$0")/.."

presets="${1:-default asan tsan}"
jobs="$(nproc 2>/dev/null || echo 4)"

for preset in $presets; do
  echo "==> preset: $preset"
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset"
done

if [ "${DLB_PERF_CHECK:-0}" = "1" ]; then
  echo "==> perf gate"
  tools/perf_check.sh
fi

echo "==> all checks passed"
