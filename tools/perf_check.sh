#!/usr/bin/env sh
# Perf regression gate for the core hot paths.
#
# Rebuilds the release preset, re-runs bench/micro_core (which measures
# generate/consume/balance ns-per-op and writes BENCH_core.json into the
# current directory) plus a short bench/scalability sparse sweep (whose
# "sparse_step" step_us rows time the obs-detached batched step loop —
# this is the tracing-off overhead gate: the observability layer must
# stay free when detached; the "async_step" rows time the barrier-free
# run_async engine the same way, so regressions in the epoch-fenced
# drain path fail here too), and compares every metric against the
# committed baseline BENCH_core.json at the repository root.  The sweep
# also re-runs each engine with the counting allocation hook attached
# and gates allocs_per_step == 0: the zero-allocation steady state
# (DESIGN.md §11) is a hard invariant, not a tolerance-checked timing.
#
# The comparison is common-mode normalized: on a shared/virtualized box
# the whole benchmark drifts ±20-30% run to run, and all metrics drift
# *together* (a noisy neighbor slows the machine, not one code path).  A
# real regression is the opposite shape — one path moves, the rest
# don't.  So the gate computes each metric's fresh/baseline ratio,
# takes the median ratio across all metrics as the machine-speed factor,
# and fails a metric only when its ratio exceeds the median by more than
# the tolerance.  Blind spot: a change that slows *every* metric by the
# same factor cancels out — that shape is almost always a build-type
# mistake (e.g. a debug build), which the build presets gate separately.
#
# Usage: tools/perf_check.sh [tolerance_pct]     (default 30)
# Opt-in from the full gate:  DLB_PERF_CHECK=1 tools/check.sh
set -eu

cd "$(dirname "$0")/.."
repo="$(pwd)"
tol="${1:-30}"
jobs="$(nproc 2>/dev/null || echo 4)"

if ! command -v python3 >/dev/null 2>&1; then
  echo "perf_check: python3 not available, skipping" >&2
  exit 0
fi

cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs" \
    --target micro_core scalability transport_rtt

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
(cd "$workdir" && "$repo/build/bench/micro_core" --benchmark_filter=NONE)
# Sparse sweep only (max_n 16 skips the dense quality table): the
# step_us it reports is the batched step loop with observability
# detached, so a regression here catches hot-path cost sneaking in
# behind the "disabled is free" promise.
"$repo/build/bench/scalability" --steps 1 --runs 1 --max_n 16 \
    --sparse_max_n 65536 --json_out "$workdir/BENCH_scalability.json" \
    >/dev/null
# Socket-transport latency rows (rtt_us / txn_us): forked ranks over
# unix-domain sockets, so a regression in the framing, pump or
# spin-then-block receive path fails here.
"$repo/build/bench/transport_rtt" \
    --json_out "$workdir/BENCH_transport.json" >/dev/null

python3 - "$repo/BENCH_core.json" "$workdir/BENCH_core.json" "$tol" \
    "$workdir/BENCH_scalability.json" "$workdir/BENCH_transport.json" <<'EOF'
import json
import statistics
import sys

base_path, fresh_path, tol_pct = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(base_path) as f:
    base = json.load(f)
with open(fresh_path) as f:
    fresh = json.load(f)
for extra in sys.argv[4:]:
    with open(extra) as f:
        fresh["results"].extend(json.load(f)["results"])

def key(row):
    # workload+n alone is ambiguous for the serving rows (several
    # strategies / Zipf exponents share one (workload, n)); fold the
    # distinguishing columns in so every row keys uniquely.  Only the
    # timing/alloc metrics below are gated — the serving rows' latency
    # percentiles are workload results, not hot-path timings, and must
    # never fail the perf gate.
    return (row.get("workload", "sparse"), row["n"],
            row.get("alpha", ""), row.get("strategy", ""))

baseline = {key(r): r for r in base["results"]}
metrics = ("generate_ns", "consume_ns", "balance_ns", "step_us",
           "rtt_us", "txn_us")

ratios = {}  # (workload, n, metric) -> (fresh, base, fresh/base)
for row in fresh["results"]:
    ref = baseline.get(key(row))
    if ref is None:
        print(f"  [new ] {key(row)}: no baseline row, skipping")
        continue
    for m in metrics:
        if m in ref and m in row and ref[m] > 0:
            ratios[key(row) + (m,)] = (row[m], ref[m], row[m] / ref[m])

if not ratios:
    print("perf_check: no comparable metrics found", file=sys.stderr)
    sys.exit(1)

# Zero-allocation steady-state gate (DESIGN.md §11): the sparse-sweep
# rows carry allocs_per_step columns measured with the counting
# operator-new hook — 0.0 means the engine's allocator went quiet within
# the first half of the horizon.  Unlike the timing gate this is exact
# (allocation counts do not drift with machine load), so any nonzero
# value is a hard failure.
alloc_failures = []
for row in fresh["results"]:
    if row.get("workload") not in ("sparse_step", "async_step"):
        continue
    for m, v in row.items():
        if m.endswith("allocs_per_step"):
            status = "FAIL" if v != 0 else "ok"
            print(f"  [{status:>4}] {row['workload']}/n={row['n']} {m}: {v}")
            if v != 0:
                alloc_failures.append((key(row), m, v))
if alloc_failures:
    print(f"perf_check: {len(alloc_failures)} engine(s) allocate in the "
          "steady state (allocs_per_step != 0)", file=sys.stderr)
    sys.exit(1)

# Wire-overhead gate: the socket rows' wire_bytes_per_msg is a pure
# framing constant (header + fixed body + payload words on the bench's
# fixed traffic shape), so like the alloc gate it is compared exactly
# (1e-6 relative slack for float round-trip), not ratio-normalized.
# Any drift means the wire format or the bench's message mix changed —
# that must be a deliberate baseline update, never silent.
wire_failures = []
for row in fresh["results"]:
    ref = baseline.get(key(row))
    if ref is None:
        continue
    m = "wire_bytes_per_msg"
    if m in ref and m in row:
        ok = abs(row[m] - ref[m]) <= 1e-6 * max(ref[m], 1.0)
        status = "ok" if ok else "FAIL"
        print(f"  [{status:>4}] {row['workload']}/n={row['n']} {m}: "
              f"{row[m]:.4f} vs baseline {ref[m]:.4f}")
        if not ok:
            wire_failures.append((key(row), m))
if wire_failures:
    print(f"perf_check: {len(wire_failures)} socket row(s) changed their "
          "per-message wire overhead", file=sys.stderr)
    sys.exit(1)

machine = statistics.median(r for _, _, r in ratios.values())
limit = machine * (1.0 + tol_pct / 100.0)
print(f"  machine-speed factor (median fresh/baseline): {machine:.2f}, "
      f"per-metric limit {limit:.2f}")

failures = []
for (wl, n, alpha, strat, m), (got, ref, ratio) in sorted(ratios.items()):
    status = "FAIL" if ratio > limit else "ok"
    tag = f"{wl}/n={n}"
    if alpha != "":
        tag += f"/a={alpha}"
    if strat != "":
        tag += f"/{strat}"
    print(f"  [{status:>4}] {tag} {m}: {got:.1f} vs baseline "
          f"{ref:.1f} (x{ratio:.2f})")
    if ratio > limit:
        failures.append((wl, n, m))

if failures:
    print(f"perf_check: {len(failures)} metric(s) regressed more than "
          f"+{tol_pct:.0f}% beyond the common-mode drift", file=sys.stderr)
    sys.exit(1)
print(f"perf_check: all metrics within +{tol_pct:.0f}% of baseline "
      f"(common-mode normalized)")
EOF
