// dlb — command-line driver for the library.
//
//   dlb simulate  [options]   run the balancer on a synthetic workload
//   dlb theory    [options]   print the analytic quantities for (n, d, f)
//   dlb compare   [options]   run all strategies on one recorded demand
//   dlb trace     [options]   generate / inspect a demand trace file
//
// Every subcommand accepts --help.  Exit code 0 on success, 1 on usage
// errors, 2 on runtime failures.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "obs/merge.hpp"
#include "obs/metrics.hpp"

#include "baselines/adapter.hpp"
#include "baselines/diffusion.hpp"
#include "baselines/gradient.hpp"
#include "baselines/rsu.hpp"
#include "baselines/simple.hpp"
#include "baselines/stealing.hpp"
#include "core/checkpoint.hpp"
#include "core/system.hpp"
#include "metrics/imbalance.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/plot.hpp"
#include "support/table.hpp"
#include "theory/bounds.hpp"
#include "theory/operators.hpp"
#include "theory/variation.hpp"

namespace {

using namespace dlb;

Workload make_workload(const std::string& kind, std::uint32_t n,
                       std::uint32_t steps, Rng& rng) {
  if (kind == "paper")
    return Workload::paper_benchmark(n, steps, WorkloadParams{}, rng);
  if (kind == "one-producer") return Workload::one_producer(n, steps);
  if (kind == "uniform") return Workload::uniform(n, steps, 0.6, 0.5);
  if (kind == "hotspot") return Workload::hotspot(n, steps, 1, 0.9, 0.3);
  if (kind == "wave") return Workload::wave(n, steps, 20);
  if (kind == "bursty") return Workload::bursty(n, steps, 30, 0.8, 0.8);
  if (kind == "flip-flop")
    return Workload::flip_flop(n, steps, 30, 0.8, 0.8);
  throw contract_error("unknown workload kind: " + kind +
                       " (try paper, one-producer, uniform, hotspot, "
                       "wave, bursty, flip-flop)");
}

int cmd_simulate(int argc, char** argv) {
  CliOptions opts;
  opts.add_int("processors", 64, "network size n")
      .add_int("steps", 500, "global time steps")
      .add_double("f", 1.1, "trigger factor")
      .add_int("delta", 2, "partners per balancing operation")
      .add_int("C", 4, "borrow cap")
      .add_int("seed", 42, "PRNG seed")
      .add_string("workload", "paper", "workload kind")
      .add_string("save", "", "write a checkpoint to this file at the end")
      .add_string("resume", "", "resume from this checkpoint file")
      .add_flag("plot", "render the load envelope as an ASCII chart");
  if (!opts.parse(argc, argv)) return 1;

  const auto n = static_cast<std::uint32_t>(opts.get_int("processors"));
  const auto steps = static_cast<std::uint32_t>(opts.get_int("steps"));
  BalancerConfig cfg;
  cfg.f = opts.get_double("f");
  cfg.delta = static_cast<std::uint32_t>(opts.get_int("delta"));
  cfg.borrow_cap = static_cast<std::uint32_t>(opts.get_int("C"));

  std::unique_ptr<System> system;
  if (const std::string& resume = opts.get_string("resume");
      !resume.empty()) {
    std::ifstream in(resume);
    DLB_REQUIRE(in.good(), "cannot open checkpoint: " + resume);
    system = std::make_unique<System>(load_checkpoint(in));
    std::cout << "resumed " << system->processors()
              << "-processor system from " << resume << "\n";
  } else {
    system = std::make_unique<System>(
        n, cfg, static_cast<std::uint64_t>(opts.get_int("seed")));
  }

  Rng wl_rng(static_cast<std::uint64_t>(opts.get_int("seed")) ^ 0x3017);
  const Workload wl = make_workload(opts.get_string("workload"),
                                    system->processors(), steps, wl_rng);
  LoadSeriesRecorder recorder(steps);
  system->attach_recorder(&recorder);
  system->run(wl);
  system->check_invariants();

  const auto report = measure_imbalance(system->loads());
  TextTable table({"metric", "value"});
  table.row().cell("workload").cell(wl.name());
  table.row().cell("config").cell(system->config().describe());
  table.row().cell("generated").cell(
      static_cast<unsigned long long>(system->total_generated()));
  table.row().cell("consumed").cell(
      static_cast<unsigned long long>(system->total_consumed()));
  table.row().cell("balance ops").cell(
      static_cast<unsigned long long>(system->balance_operations()));
  table.row().cell("packets moved (net)").cell(
      static_cast<unsigned long long>(
          system->costs().totals().packets_moved_net));
  table.row().cell("min/avg/max load").cell(
      format_double(report.min_load, 0) + " / " +
      format_double(report.avg_load, 2) + " / " +
      format_double(report.max_load, 0));
  table.row().cell("max/avg imbalance").cell(report.max_over_avg, 3);
  table.row().cell("CoV").cell(report.cov, 3);
  table.print(std::cout);

  if (opts.get_flag("plot")) {
    std::cout << '\n';
    PlotSeries avg{"avg", '*', {}};
    PlotSeries lo{"min", '.', {}};
    PlotSeries hi{"max", '^', {}};
    for (std::uint32_t t = 0; t < steps; ++t) {
      avg.values.push_back(recorder.series().mean(t));
      lo.values.push_back(recorder.series().min(t));
      hi.values.push_back(recorder.series().max(t));
    }
    render_plot(std::cout, {lo, hi, avg});
  }

  if (const std::string& save = opts.get_string("save"); !save.empty()) {
    std::ofstream out(save);
    DLB_REQUIRE(out.good(), "cannot write checkpoint: " + save);
    save_checkpoint(*system, out);
    std::cout << "\ncheckpoint written to " << save << "\n";
  }
  return 0;
}

int cmd_theory(int argc, char** argv) {
  CliOptions opts;
  opts.add_int("n", 64, "network size")
      .add_double("f", 1.1, "trigger factor")
      .add_int("delta", 2, "partner count")
      .add_int("C", 4, "borrow cap (Theorem 4 additive term)")
      .add_int("steps", 150, "variation-density steps");
  if (!opts.parse(argc, argv)) return 1;
  ModelParams p{static_cast<double>(opts.get_int("n")),
                static_cast<double>(opts.get_int("delta")),
                opts.get_double("f")};
  TextTable table({"quantity", "value"});
  table.row().cell("FIX(n, d, f)").cell(fixpoint(p), 6);
  table.row().cell("FIX(n, d, 1/f)").cell(theorem3_lower(p), 6);
  if (p.f < p.delta + 1.0) {
    table.row().cell("limit d/(d+1-f)").cell(
        fixpoint_limit(p.delta, p.f), 6);
    table.row()
        .cell("Theorem 4 factor f^2*d/(d+1-f)")
        .cell(theorem4_factor(p.delta, p.f), 6);
  }
  table.row().cell("U (Lemma 5)").cell(U_const(p), 6);
  table.row().cell("D (Lemma 5)").cell(D_const(p), 6);
  VariationParams vp;
  vp.n = static_cast<std::uint32_t>(p.n);
  vp.delta = static_cast<std::uint32_t>(p.delta);
  vp.f = p.f;
  VariationRecursion rec(vp);
  rec.advance(static_cast<std::uint32_t>(opts.get_int("steps")));
  table.row()
      .cell("variation density VD @" + std::to_string(opts.get_int("steps")))
      .cell(rec.vd_other(), 6);
  table.print(std::cout);
  return 0;
}

int cmd_compare(int argc, char** argv) {
  CliOptions opts;
  opts.add_int("processors", 64, "network size")
      .add_int("steps", 500, "global time steps")
      .add_int("seed", 42, "PRNG seed")
      .add_string("workload", "paper", "workload kind");
  if (!opts.parse(argc, argv)) return 1;
  const auto n = static_cast<std::uint32_t>(opts.get_int("processors"));
  const auto steps = static_cast<std::uint32_t>(opts.get_int("steps"));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  Rng wl_rng(seed);
  const Workload wl =
      make_workload(opts.get_string("workload"), n, steps, wl_rng);
  Rng trace_rng(seed + 1);
  const Trace trace = Trace::record(wl, trace_rng);

  const Topology torus = Topology::balanced_torus(n);

  std::vector<std::unique_ptr<LoadBalancer>> strategies;
  strategies.push_back(std::make_unique<NoBalancing>(n));
  strategies.push_back(std::make_unique<RandomScatter>(n, seed));
  strategies.push_back(
      std::make_unique<RudolphUpfal>(n, RudolphUpfal::Params{}, seed));
  strategies.push_back(
      std::make_unique<WorkStealing>(n, WorkStealing::Params{}, seed));
  strategies.push_back(
      std::make_unique<Diffusion>(torus, Diffusion::Params{}));
  strategies.push_back(
      std::make_unique<GradientModel>(torus, GradientModel::Params{}));
  BalancerConfig cfg;
  cfg.f = 1.1;
  cfg.delta = 2;
  strategies.push_back(std::make_unique<DlbAdapter>(n, cfg, seed));

  TextTable table({"strategy", "final CoV", "failures", "messages",
                   "packets moved"});
  for (auto& s : strategies) {
    run_trace(*s, trace);
    table.row()
        .cell(s->name())
        .cell(measure_imbalance(s->loads()).cov, 3)
        .cell(static_cast<unsigned long long>(s->consume_failures()))
        .cell(static_cast<unsigned long long>(s->messages()))
        .cell(static_cast<unsigned long long>(s->packets_moved()));
  }
  table.print(std::cout);
  return 0;
}

int cmd_trace(int argc, char** argv) {
  CliOptions opts;
  opts.add_int("processors", 16, "network size")
      .add_int("steps", 200, "global time steps")
      .add_int("seed", 42, "PRNG seed")
      .add_string("workload", "paper", "workload kind")
      .add_string("out", "", "write the trace to this file")
      .add_string("inspect", "", "read a trace file and print a summary");
  if (!opts.parse(argc, argv)) return 1;

  if (const std::string& path = opts.get_string("inspect"); !path.empty()) {
    std::ifstream in(path);
    DLB_REQUIRE(in.good(), "cannot open trace: " + path);
    const Trace trace = Trace::load(in);
    TextTable table({"property", "value"});
    table.row().cell("processors").cell(
        static_cast<std::size_t>(trace.processors()));
    table.row().cell("horizon").cell(
        static_cast<std::size_t>(trace.horizon()));
    table.row().cell("generations").cell(
        static_cast<unsigned long long>(trace.total_generations()));
    table.row().cell("consume attempts").cell(
        static_cast<unsigned long long>(trace.total_consume_attempts()));
    table.row().cell("net demand").cell(
        static_cast<long long>(trace.net_demand()));
    table.print(std::cout);
    return 0;
  }

  const auto n = static_cast<std::uint32_t>(opts.get_int("processors"));
  const auto steps = static_cast<std::uint32_t>(opts.get_int("steps"));
  Rng wl_rng(static_cast<std::uint64_t>(opts.get_int("seed")));
  const Workload wl =
      make_workload(opts.get_string("workload"), n, steps, wl_rng);
  Rng trace_rng(static_cast<std::uint64_t>(opts.get_int("seed")) + 1);
  const Trace trace = Trace::record(wl, trace_rng);
  const std::string& out = opts.get_string("out");
  if (out.empty()) {
    trace.save(std::cout);
  } else {
    std::ofstream os(out);
    DLB_REQUIRE(os.good(), "cannot write trace: " + out);
    trace.save(os);
    std::cout << "trace written to " << out << " ("
              << trace.total_generations() << " generations)\n";
  }
  return 0;
}

int cmd_merge_trace(int argc, char** argv) {
  CliOptions opts;
  opts.add_string("dir", "",
                  "rendezvous dir holding trace.<rank> / metrics.<rank> "
                  "files (e.g. a kept post-mortem dir)")
      .add_string("out", "merged_trace.json",
                  "write the merged Perfetto trace here")
      .add_string("metrics_out", "",
                  "also merge metrics.<rank> files into this JSON")
      .add_int("max_ranks", 256, "highest rank index probed in --dir");
  if (!opts.parse(argc, argv)) return 1;
  const std::string dir = opts.get_string("dir");
  DLB_REQUIRE(!dir.empty(), "merge-trace needs --dir");

  obs::TraceMerger merger;
  obs::MetricsRegistry merged;
  int metric_files = 0;
  const int max_ranks = static_cast<int>(opts.get_int("max_ranks"));
  for (int r = 0; r < max_ranks; ++r) {
    const std::string tpath = dir + "/trace." + std::to_string(r);
    if (std::ifstream(tpath).is_open()) merger.add_rank_file(tpath);
    std::ifstream min(dir + "/metrics." + std::to_string(r));
    if (min.is_open()) {
      std::stringstream buf;
      buf << min.rdbuf();
      std::istringstream per_rank(buf.str());
      obs::merge_state(per_rank, merged, "rank" + std::to_string(r) + ".");
      std::istringstream aggregate(buf.str());
      obs::merge_state(aggregate, merged);
      ++metric_files;
    }
  }
  DLB_REQUIRE(merger.ranks() > 0,
              "no trace.<rank> files found under " + dir);

  const std::string out = opts.get_string("out");
  {
    std::ofstream os(out);
    DLB_REQUIRE(os.good(), "cannot write trace: " + out);
    merger.write_chrome_json(os);
  }
  const auto flows = merger.matched_flows();
  std::cout << "merged " << merger.ranks() << " rank traces ("
            << merger.events().size() << " events, " << flows.size()
            << " matched send->recv flows) into " << out << "\n";
  if (const std::string& mpath = opts.get_string("metrics_out");
      !mpath.empty()) {
    DLB_REQUIRE(metric_files > 0,
                "no metrics.<rank> files found under " + dir);
    std::ofstream os(mpath);
    DLB_REQUIRE(os.good(), "cannot write metrics: " + mpath);
    merged.snapshot().write_json(os);
    std::cout << "merged " << metric_files << " rank metric dumps into "
              << mpath << "\n";
  }
  return 0;
}

void print_usage() {
  std::cerr
      << "usage: dlb <command> [options]\n"
         "commands:\n"
         "  simulate     run the balancer on a synthetic workload\n"
         "  theory       print FIX, bounds and variation density\n"
         "  compare      run every strategy on one recorded demand trace\n"
         "  trace        generate or inspect a demand trace file\n"
         "  merge-trace  stitch per-rank socket-run trace/metrics files\n"
         "run `dlb <command> --help` for the command's options.\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    if (command == "simulate") return cmd_simulate(argc - 1, argv + 1);
    if (command == "theory") return cmd_theory(argc - 1, argv + 1);
    if (command == "compare") return cmd_compare(argc - 1, argv + 1);
    if (command == "trace") return cmd_trace(argc - 1, argv + 1);
    if (command == "merge-trace") return cmd_merge_trace(argc - 1, argv + 1);
    std::cerr << "unknown command: " << command << "\n";
    print_usage();
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
