// Distributed best-first branch & bound for the symmetric TSP — the
// application family the paper's algorithm was built for (its companion
// papers [7, 8] parallelize B&B on transputer networks with exactly this
// balancing principle).
//
// Each of P simulated workers owns a priority queue of open search nodes
// (packets).  Work is generated dynamically (node expansion) and consumed
// unpredictably (pruning against the incumbent) — the paper's setting.
// Whenever a worker's queue has grown or shrunk by the factor f since its
// last balancing operation, it equalizes queue sizes (±1) with delta
// random partners, migrating real search nodes.
//
//   $ ./build/examples/branch_and_bound
//
// The run compares: no balancing (all work stays where it was generated)
// vs the paper's strategy — total makespan (parallel steps) and worker
// utilization.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <queue>
#include <vector>

#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using dlb::Rng;

constexpr int kCities = 13;

struct Tsp {
  int dist[kCities][kCities] = {};

  static Tsp random(Rng& rng) {
    Tsp tsp;
    for (int i = 0; i < kCities; ++i) {
      for (int j = i + 1; j < kCities; ++j) {
        const int d = static_cast<int>(rng.below(90)) + 10;
        tsp.dist[i][j] = d;
        tsp.dist[j][i] = d;
      }
    }
    return tsp;
  }

  // Cheapest edge leaving `city` toward any city in `allowed` (bitmask).
  int cheapest_out(int city, unsigned allowed) const {
    int best = 1 << 20;
    for (int j = 0; j < kCities; ++j)
      if ((allowed >> j) & 1u) best = std::min(best, dist[city][j]);
    return best;
  }
};

struct Node {
  unsigned visited = 1;   // bitmask, city 0 is the fixed start
  std::uint8_t last = 0;  // current end of the partial tour
  int cost = 0;
  int bound = 0;          // admissible lower bound on any completion

  bool operator<(const Node& other) const {
    return bound > other.bound;  // min-heap via std::priority_queue
  }
};

int lower_bound(const Tsp& tsp, const Node& node) {
  // cost so far + cheapest continuation out of every remaining city
  // (including the current end), closing back to city 0.
  const unsigned all = (1u << kCities) - 1;
  const unsigned remaining = all & ~node.visited;
  if (remaining == 0) return node.cost + tsp.dist[node.last][0];
  int bound = node.cost + tsp.cheapest_out(node.last, remaining);
  for (int c = 0; c < kCities; ++c) {
    if (!((remaining >> c) & 1u)) continue;
    const unsigned targets = (remaining & ~(1u << c)) | 1u;  // others or home
    bound += tsp.cheapest_out(c, targets);
  }
  return bound;
}

struct Worker {
  std::priority_queue<Node> open;
  std::int64_t l_old = 0;
  std::uint64_t expanded = 0;
  std::uint64_t idle_steps = 0;
};

struct RunResult {
  int optimum = 0;
  std::uint64_t steps = 0;
  std::uint64_t expanded = 0;
  std::uint64_t idle = 0;
  std::uint64_t balance_ops = 0;
  std::uint64_t nodes_moved = 0;
};

RunResult run(const Tsp& tsp, std::uint32_t workers, bool balance,
              double f, std::uint32_t delta, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Worker> pool(workers);
  int incumbent = 1 << 20;

  Node root;
  root.bound = lower_bound(tsp, root);
  pool[0].open.push(root);

  RunResult result;
  auto total_open = [&] {
    std::size_t total = 0;
    for (const Worker& w : pool) total += w.open.size();
    return total;
  };

  auto maybe_balance = [&](std::uint32_t p) {
    if (!balance) return;
    Worker& w = pool[p];
    const auto size = static_cast<std::int64_t>(w.open.size());
    const bool grew = size > w.l_old &&
                      static_cast<double>(size) >=
                          f * static_cast<double>(w.l_old);
    const bool shrank = size < w.l_old && w.l_old >= 1 &&
                        static_cast<double>(size) <=
                            static_cast<double>(w.l_old) / f;
    if (!grew && !shrank) return;
    // Equalize with delta random partners: repeatedly move the best node
    // of the richest participant to the poorest (spreading promising
    // subtrees, as the best-first parallelizations of [8] do).
    auto participants = rng.sample_distinct(workers, delta, p);
    participants.push_back(p);
    while (true) {
      std::uint32_t rich = participants[0];
      std::uint32_t poor = participants[0];
      for (std::uint32_t q : participants) {
        if (pool[q].open.size() > pool[rich].open.size()) rich = q;
        if (pool[q].open.size() < pool[poor].open.size()) poor = q;
      }
      if (pool[rich].open.size() <= pool[poor].open.size() + 1) break;
      pool[poor].open.push(pool[rich].open.top());
      pool[rich].open.pop();
      ++result.nodes_moved;
    }
    for (std::uint32_t q : participants)
      pool[q].l_old = static_cast<std::int64_t>(pool[q].open.size());
    ++result.balance_ops;
  };

  while (total_open() > 0) {
    ++result.steps;
    for (std::uint32_t p = 0; p < workers; ++p) {
      Worker& w = pool[p];
      if (w.open.empty()) {
        ++w.idle_steps;
        continue;
      }
      const Node node = w.open.top();
      w.open.pop();
      if (node.bound >= incumbent) {
        // Pruned: a consumption without generation.
        maybe_balance(p);
        continue;
      }
      ++w.expanded;
      for (int c = 1; c < kCities; ++c) {
        if ((node.visited >> c) & 1u) continue;
        Node child;
        child.visited = node.visited | (1u << c);
        child.last = static_cast<std::uint8_t>(c);
        child.cost = node.cost + tsp.dist[node.last][c];
        if (child.visited == (1u << kCities) - 1) {
          const int tour = child.cost + tsp.dist[c][0];
          incumbent = std::min(incumbent, tour);
          continue;
        }
        child.bound = lower_bound(tsp, child);
        if (child.bound < incumbent) w.open.push(child);
      }
      maybe_balance(p);
    }
  }

  result.optimum = incumbent;
  for (const Worker& w : pool) {
    result.expanded += w.expanded;
    result.idle += w.idle_steps;
  }
  return result;
}

}  // namespace

int main() {
  using dlb::TextTable;
  Rng seed_rng(2026);
  const Tsp tsp = Tsp::random(seed_rng);
  const std::uint32_t workers = 8;

  std::cout << "Distributed best-first branch & bound, " << kCities
            << "-city TSP, " << workers << " workers\n\n";

  TextTable table({"strategy", "optimum", "parallel steps",
                   "nodes expanded", "idle worker-steps", "utilization",
                   "balance ops", "nodes migrated"});
  struct Cfg {
    const char* name;
    bool balance;
    double f;
    std::uint32_t delta;
  };
  for (const Cfg& cfg :
       {Cfg{"no balancing", false, 0, 0}, Cfg{"dlb f=1.5 d=1", true, 1.5, 1},
        Cfg{"dlb f=1.2 d=2", true, 1.2, 2},
        Cfg{"dlb f=1.1 d=4", true, 1.1, 4}}) {
    const RunResult r = run(tsp, workers, cfg.balance, cfg.f, cfg.delta, 99);
    const double busy = static_cast<double>(r.steps) * workers -
                        static_cast<double>(r.idle);
    table.row()
        .cell(cfg.name)
        .cell(static_cast<long long>(r.optimum))
        .cell(static_cast<unsigned long long>(r.steps))
        .cell(static_cast<unsigned long long>(r.expanded))
        .cell(static_cast<unsigned long long>(r.idle))
        .cell(busy / (static_cast<double>(r.steps) * workers), 3)
        .cell(static_cast<unsigned long long>(r.balance_ops))
        .cell(static_cast<unsigned long long>(r.nodes_moved));
  }
  table.print(std::cout);
  std::cout << "\nAll strategies prove the same optimum; the balancer "
               "turns one seeded queue into near-full machine "
               "utilization.\n";
  return 0;
}
