// OR-parallel task-tree search — the concurrent-logic-programming
// workload of the paper's reference [4] (distributed Flat Concurrent
// Prolog): a search tree unfolds dynamically, every node costing one
// unit of work and spawning a random number of children *on the
// processor that executes it*.  Whether the machine stays busy depends
// entirely on the balancer moving tasks away from the spawning sites.
//
// Packets in the System ARE the pending tasks: a processor executes a
// task by consuming a packet (which only succeeds where a packet
// resides) and spawns children by generating packets locally.  We
// compare effectively-no-balancing with the paper's algorithm at
// several (f, delta) points, both with global random partners and with
// partners restricted to a hypercube neighborhood.
//
//   $ ./build/examples/task_tree
#include <algorithm>
#include <iostream>

#include "core/item_system.hpp"
#include "support/table.hpp"

namespace {

using namespace dlb;

/// A real task object carried by the balancer (ItemSystem payload): the
/// goal's depth in the search tree.
struct Goal {
  std::uint32_t depth = 0;
};

struct TreeRun {
  std::uint64_t executed = 0;
  std::uint64_t steps = 0;
  double utilization = 0.0;  // busy processor-steps / total
  std::uint64_t balance_ops = 0;
  std::uint64_t hops = 0;
  std::uint32_t max_depth = 0;
};

int spawn_count(Rng& rng, std::uint64_t executed, std::uint64_t max_tasks) {
  // The search fans out deterministically near the root (real search
  // trees are bushy at shallow depth), then branches randomly with mean
  // 1.1 until the budget truncates it ("solution found").
  if (executed >= max_tasks) return 0;
  if (executed < 64) return 2;
  const double u = rng.uniform01();
  return u < 0.25 ? 0 : (u < 0.65 ? 1 : 2);
}

// Null policy: tasks run only where they were spawned.
TreeRun run_tree_unbalanced(std::uint32_t n, std::uint64_t seed,
                            std::uint64_t max_tasks) {
  Rng spawn_rng(seed ^ 0x17ee);
  std::vector<std::uint64_t> pending(n, 0);
  pending[0] = 1;
  TreeRun out;
  std::uint64_t busy = 0;
  std::uint64_t total = 1;
  while (total > 0 && out.executed < max_tasks) {
    ++out.steps;
    for (std::uint32_t p = 0; p < n; ++p) {
      if (pending[p] == 0) continue;
      pending[p] -= 1;
      --total;
      ++busy;
      ++out.executed;
      const int children = spawn_count(spawn_rng, out.executed, max_tasks);
      pending[p] += static_cast<std::uint64_t>(children);
      total += static_cast<std::uint64_t>(children);
    }
  }
  out.utilization = out.steps == 0
                        ? 0.0
                        : static_cast<double>(busy) /
                              (static_cast<double>(out.steps) * n);
  return out;
}

TreeRun run_tree(const Topology& topo, BalancerConfig cfg, bool local,
                 std::uint64_t seed, std::uint64_t max_tasks) {
  const std::uint32_t n = topo.size();
  // Goals are real payload objects; ItemSystem keeps them in lockstep
  // with the balancer's packets.
  ItemSystem<Goal> items(n, cfg, seed, &topo);
  if (local) items.restrict_partners_to_neighborhood(1);
  Rng spawn_rng(seed ^ 0x17ee);
  items.produce(0, Goal{0});  // the root goal enters at processor 0

  TreeRun out;
  std::uint64_t busy = 0;
  while (items.total_items() > 0 && out.executed < max_tasks) {
    ++out.steps;
    for (std::uint32_t p = 0; p < n; ++p) {
      if (items.queue_size(p) == 0) continue;  // starved this step
      const auto goal = items.consume(p);
      if (!goal.has_value()) continue;
      ++busy;
      ++out.executed;
      out.max_depth = std::max(out.max_depth, goal->depth);
      const int children = spawn_count(spawn_rng, out.executed, max_tasks);
      for (int c = 0; c < children; ++c)
        items.produce(p, Goal{goal->depth + 1});
    }
  }
  items.check();
  out.utilization = out.steps == 0
                        ? 0.0
                        : static_cast<double>(busy) /
                              (static_cast<double>(out.steps) * n);
  out.balance_ops = items.system().balance_operations();
  out.hops = items.system().costs().totals().packet_hops;
  return out;
}

}  // namespace

int main() {
  const auto topo = Topology::hypercube(4);  // 16 nodes
  const std::uint64_t budget = 20000;

  std::cout << "OR-parallel task tree on a 16-node hypercube "
               "(reference [4] workload), task budget "
            << budget << "\n\n";

  TextTable table({"strategy", "parallel steps", "tasks executed",
                   "utilization", "max depth", "balance ops",
                   "packet hops"});
  struct Cfg {
    const char* name;
    double f;
    std::uint32_t delta;
    bool local;
  };
  {
    const TreeRun r = run_tree_unbalanced(topo.size(), 424242, budget);
    table.row()
        .cell("no balancing")
        .cell(static_cast<unsigned long long>(r.steps))
        .cell(static_cast<unsigned long long>(r.executed))
        .cell(r.utilization, 3)
        .cell("n/a")
        .cell(static_cast<unsigned long long>(r.balance_ops))
        .cell(static_cast<unsigned long long>(r.hops));
  }
  for (const Cfg& cfg : {Cfg{"dlb f=1.5 d=1 global", 1.5, 1, false},
                         Cfg{"dlb f=1.2 d=3 global", 1.2, 3, false},
                         Cfg{"dlb f=1.2 d=3 neighbors", 1.2, 3, true}}) {
    BalancerConfig bc;
    bc.f = cfg.f;
    bc.delta = cfg.delta;
    const TreeRun r = run_tree(topo, bc, cfg.local, 424242, budget);
    table.row()
        .cell(cfg.name)
        .cell(static_cast<unsigned long long>(r.steps))
        .cell(static_cast<unsigned long long>(r.executed))
        .cell(r.utilization, 3)
        .cell(static_cast<std::size_t>(r.max_depth))
        .cell(static_cast<unsigned long long>(r.balance_ops))
        .cell(static_cast<unsigned long long>(r.hops));
  }
  table.print(std::cout);
  std::cout << "\nWithout balancing the tree lives and dies on processor "
               "0; with it the same budget finishes in a fraction of the "
               "steps.  Neighborhood partners cut the hop bill at a small "
               "cost in speed.\n";
  return 0;
}
