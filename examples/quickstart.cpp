// Quickstart: simulate the Lüling–Monien load balancer on a 16-processor
// network, drive it with a synthetic workload, and check the measured
// balance against the paper's Theorem 4 envelope.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "core/system.hpp"
#include "metrics/imbalance.hpp"
#include "support/table.hpp"
#include "theory/bounds.hpp"

int main() {
  using namespace dlb;

  // 1. Configure the algorithm: trigger factor f, partner count delta,
  //    borrow cap C.  Theorems 1-4 need 1 <= f < delta + 1.
  BalancerConfig config;
  config.f = 1.1;
  config.delta = 2;
  config.borrow_cap = 4;
  config.validate(16, /*strict_theory=*/true);

  // 2. Create the simulated 16-processor system (deterministic in seed).
  System system(16, config, /*seed=*/42);

  // 3. Drive it with a workload.  Here: the paper's §7 benchmark —
  //    random phases of generation and consumption per processor.
  Rng workload_rng(7);
  const Workload workload =
      Workload::paper_benchmark(16, /*horizon=*/500, WorkloadParams{},
                                workload_rng);
  system.run(workload);

  // 4. Inspect the result.
  system.check_invariants();  // ledgers + packet conservation
  const auto loads = system.loads();
  const ImbalanceReport report = measure_imbalance(loads);

  TextTable table({"metric", "value"});
  table.row().cell("processors").cell(std::size_t{16});
  table.row().cell("packets generated").cell(
      static_cast<unsigned long long>(system.total_generated()));
  table.row().cell("packets consumed").cell(
      static_cast<unsigned long long>(system.total_consumed()));
  table.row().cell("balancing operations").cell(
      static_cast<unsigned long long>(system.balance_operations()));
  table.row().cell("min load").cell(report.min_load, 0);
  table.row().cell("avg load").cell(report.avg_load, 2);
  table.row().cell("max load").cell(report.max_load, 0);
  table.row().cell("max/avg imbalance").cell(report.max_over_avg, 3);
  table.row().cell("coefficient of variation").cell(report.cov, 3);
  table.print(std::cout);

  // 5. Compare with the paper's guarantee (Theorem 4):
  //    E(l_i) <= f^2 * delta/(delta+1-f) * (E(l_j) + C).
  const double factor = theorem4_factor(config.delta, config.f);
  std::cout << "\nTheorem 4 factor f^2*d/(d+1-f) = "
            << format_double(factor, 3)
            << "; measured max/(min+C) = "
            << format_double(report.max_load /
                                 (std::max(report.min_load, 0.0) +
                                  config.borrow_cap),
                             3)
            << " (single run; the theorem bounds expectations)\n";
  return 0;
}
