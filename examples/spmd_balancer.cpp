// The balancing algorithm in SPMD message-passing style — the shape of
// the paper's transputer implementations [7, 8], written against the
// bundled mini message-passing interface (src/mp).
//
// Bulk-synchronous variant: each global step every rank applies its
// local demand, then the machine runs one *deterministic replicated*
// balancing round — every rank allgathers (trigger?, load) pairs, runs
// the same seeded RNG to draw partners for each triggered initiator, and
// computes identical assignments; only the actual packet transfers use
// point-to-point messages.  Replicated deterministic decisions are a
// classic SPMD trick: no coordinator and no races, at the cost of a
// collective per step.
//
//   $ ./build/examples/spmd_balancer
#include <algorithm>
#include <iostream>
#include <mutex>

#include "mp/communicator.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "workload/trace.hpp"

int main() {
  using namespace dlb;

  const int n = 8;
  const std::uint32_t steps = 400;
  const double f = 1.2;
  const std::uint32_t delta = 2;

  // Shared, read-only demand.
  Rng wl_rng(31);
  const Workload wl =
      Workload::paper_benchmark(n, steps, WorkloadParams{}, wl_rng);
  Rng trace_rng(32);
  const Trace trace = Trace::record(wl, trace_rng);

  World world(n);
  std::mutex report_mutex;
  std::int64_t final_min = 0;
  std::int64_t final_max = 0;
  std::int64_t final_total = 0;
  std::int64_t total_ops = 0;
  std::int64_t total_moved = 0;

  world.launch([&](Comm& comm) {
    const auto me = static_cast<std::uint32_t>(comm.rank());
    std::int64_t load = 0;
    std::int64_t l_old = 0;
    std::int64_t generated = 0;
    std::int64_t consumed = 0;
    std::int64_t ops = 0;
    std::int64_t moved = 0;
    // Every rank runs the SAME decision RNG: decisions are replicated,
    // so no coordination messages are needed to agree on partners.
    Rng decisions(4711);

    for (std::uint32_t t = 0; t < steps; ++t) {
      const WorkEvent ev = trace.at(me, t);
      if (ev.generate) {
        ++load;
        ++generated;
      }
      if (ev.consume && load > 0) {
        --load;
        ++consumed;
      }

      // Replicated balancing round.
      const bool grew = load > l_old &&
                        static_cast<double>(load) >=
                            f * static_cast<double>(l_old);
      const bool shrank = load < l_old && l_old >= 1 &&
                          static_cast<double>(load) <=
                              static_cast<double>(l_old) / f;
      const auto triggers = comm.allgather(grew || shrank ? 1 : 0);
      auto loads = comm.allgather(load);

      for (int initiator = 0; initiator < n; ++initiator) {
        if (!triggers[static_cast<std::size_t>(initiator)]) continue;
        // All ranks draw the same partners from the replicated RNG.
        auto partners = decisions.sample_distinct(
            static_cast<std::uint32_t>(n), delta,
            static_cast<std::uint32_t>(initiator));
        std::vector<std::uint32_t> group{
            static_cast<std::uint32_t>(initiator)};
        group.insert(group.end(), partners.begin(), partners.end());
        std::int64_t pool = 0;
        for (std::uint32_t g : group) pool += loads[g];
        const auto m = static_cast<std::int64_t>(group.size());
        const std::int64_t base = pool / m;
        std::int64_t rem = pool % m;
        // Deal shares deterministically (rotation from the replicated
        // RNG keeps the remainder fair).
        const std::size_t start = static_cast<std::size_t>(
            decisions.below(group.size()));
        std::vector<std::int64_t> share(group.size(), base);
        for (std::int64_t k = 0; k < rem; ++k)
          share[(start + static_cast<std::size_t>(k)) % group.size()] += 1;
        // Point-to-point transfers: surplus members ship packets to
        // deficit members (every rank computes the same flow plan, but
        // only the endpoints act on it).
        std::size_t give = 0;
        std::size_t take = 0;
        std::vector<std::int64_t> delta_v(group.size());
        for (std::size_t i = 0; i < group.size(); ++i)
          delta_v[i] = share[i] - loads[group[i]];
        while (true) {
          while (give < group.size() && delta_v[give] >= 0) ++give;
          while (take < group.size() && delta_v[take] <= 0) ++take;
          if (give >= group.size() || take >= group.size()) break;
          const std::int64_t amount =
              std::min(-delta_v[give], delta_v[take]);
          if (group[give] == me)
            comm.send(static_cast<int>(group[take]),
                      static_cast<int>(t), {amount});
          if (group[take] == me) {
            const MpMessage msg =
                comm.recv(static_cast<int>(group[give]),
                          static_cast<int>(t));
            moved += msg.payload[0];
          }
          delta_v[give] += amount;
          delta_v[take] -= amount;
        }
        // Commit the replicated assignment; participants also reset
        // their trigger baseline (§4: an operation counts as delta+1
        // independent operations).
        for (std::size_t i = 0; i < group.size(); ++i) {
          loads[group[i]] = share[i];
          if (group[i] == me) {
            load = share[i];
            l_old = share[i];
          }
        }
        if (static_cast<std::uint32_t>(initiator) == me) ++ops;
      }
    }

    // Machine-wide report via collectives.
    const std::int64_t total = comm.allreduce_sum(load);
    const std::int64_t lo = comm.allreduce_min(load);
    const std::int64_t hi = comm.allreduce_max(load);
    const std::int64_t all_ops = comm.allreduce_sum(ops);
    const std::int64_t all_moved = comm.allreduce_sum(moved);
    const std::int64_t all_gen = comm.allreduce_sum(generated);
    const std::int64_t all_con = comm.allreduce_sum(consumed);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(report_mutex);
      final_min = lo;
      final_max = hi;
      final_total = total;
      total_ops = all_ops;
      total_moved = all_moved;
      if (total != all_gen - all_con)
        std::cerr << "CONSERVATION VIOLATED\n";
    }
  });

  TextTable table({"metric", "value"});
  table.row().cell("ranks").cell(static_cast<long long>(n));
  table.row().cell("final total load").cell(
      static_cast<long long>(final_total));
  table.row().cell("final min load").cell(
      static_cast<long long>(final_min));
  table.row().cell("final max load").cell(
      static_cast<long long>(final_max));
  table.row().cell("balancing rounds initiated").cell(
      static_cast<long long>(total_ops));
  table.row().cell("packets shipped (p2p)").cell(
      static_cast<long long>(total_moved));
  table.print(std::cout);
  std::cout << "\nReplicated-decision SPMD balancing: collectives carry "
               "the control plane, point-to-point messages carry the "
               "packets.\n";
  return 0;
}
