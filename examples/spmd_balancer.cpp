// The balancing algorithm in SPMD message-passing style — the shape of
// the paper's transputer implementations [7, 8], written against the
// bundled mini message-passing interface (src/mp).  The protocol itself
// lives in src/mp/spmd_balance.{hpp,cpp} (shared with bench/fault_sweep
// and the mp fault tests); this example is its command line.
//
// The run is failure-tolerant: message drops and rank crashes can be
// injected deterministically and the report shows conservation modulo
// declared loss (see mp/fault.hpp and DESIGN.md §7).
//
// With --transport=socket the ranks are real forked processes wired by
// Unix-domain sockets (mp/spmd_socket.hpp): a --kill there is a real
// SIGKILL observed by peers through the failure detector, and --restart
// re-forks the dead rank to replay its on-disk journal.
//
//   $ ./build/examples/spmd_balancer                       # fault-free
//   $ ./build/examples/spmd_balancer --drop=0.1 --kill=3@200 --seed=7
//   $ ./build/examples/spmd_balancer --transport=socket --ranks=4
//         --drop=0.1 --kill=2@40 --restart   (one line)
#include <cstdio>
#include <iostream>
#include <string>

#include "mp/spmd_balance.hpp"
#include "mp/spmd_socket.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace dlb;

  CliOptions cli;
  cli.add_int("ranks", 8, "number of ranks (>= 2)")
      .add_int("steps", 400, "global steps to run")
      .add_double("f", 1.2, "trigger factor (> 1)")
      .add_int("delta", 2, "partners per balancing operation")
      .add_double("drop", 0.0, "per-message drop probability [0, 1]")
      .add_double("dup", 0.0, "per-message duplication probability [0, 1]")
      .add_string("kill", "", "crash schedule, e.g. 3@200 (rank@step)")
      .add_int("seed", 7, "fault-plan seed")
      .add_int("ckpt", 25, "journal checkpoint interval (steps)")
      .add_int("timeout-ms", 50, "p2p receive deadline (ms)")
      .add_string("transport", "local",
                  "rank wiring: local (threads) or socket (processes)")
      .add_flag("tcp", "socket transport over TCP loopback, not UDS")
      .add_flag("restart", "re-fork killed ranks to replay their journal")
      .add_string("trace_out", "",
                  "socket runs: merged Perfetto trace (per-rank process "
                  "tracks, cross-rank flow arcs, crash instants)")
      .add_string("metrics_out", "",
                  "socket runs: merged machine metrics JSON (per-rank "
                  "and aggregate mp.* / spmd.* instruments)");
  if (!cli.parse(argc, argv)) return 1;

  const int n = static_cast<int>(cli.get_int("ranks"));
  const auto steps = static_cast<std::uint32_t>(cli.get_int("steps"));
  if (n < 2 || steps == 0) {
    std::cerr << "need --ranks >= 2 and --steps >= 1\n";
    return 1;
  }

  SpmdParams params;
  params.f = cli.get_double("f");
  params.delta = static_cast<std::uint32_t>(cli.get_int("delta"));
  params.recv_timeout =
      std::chrono::milliseconds(cli.get_int("timeout-ms"));

  FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  plan.default_link.drop = cli.get_double("drop");
  plan.default_link.duplicate = cli.get_double("dup");
  plan.journal_interval = static_cast<std::uint32_t>(cli.get_int("ckpt"));
  const std::string kill = cli.get_string("kill");
  if (!kill.empty()) {
    const std::size_t at = kill.find('@');
    if (at == std::string::npos) {
      std::cerr << "--kill expects rank@step, e.g. --kill=3@200\n";
      return 1;
    }
    plan.kill(std::stoi(kill.substr(0, at)),
              static_cast<std::uint32_t>(std::stoul(kill.substr(at + 1))));
  }

  // Shared, read-only demand.
  Rng wl_rng(31);
  const Workload wl = Workload::paper_benchmark(
      static_cast<std::uint32_t>(n), steps, WorkloadParams{}, wl_rng);
  Rng trace_rng(32);
  const Trace trace = Trace::record(wl, trace_rng);

  const std::string transport = cli.get_string("transport");
  if (transport != "local" && transport != "socket") {
    std::cerr << "--transport must be local or socket\n";
    return 1;
  }
  const std::string trace_out = cli.get_string("trace_out");
  const std::string metrics_out = cli.get_string("metrics_out");
  if (transport != "socket" && (!trace_out.empty() || !metrics_out.empty())) {
    std::cerr << "--trace_out/--metrics_out require --transport=socket\n";
    return 1;
  }

  SpmdReport report;
  if (transport == "socket") {
    SocketRunOptions opts;
    opts.ranks = n;
    opts.tcp = cli.get_flag("tcp");
    opts.params = params;
    opts.plan = plan;
    opts.restart_dead = cli.get_flag("restart");
    opts.trace_out = trace_out;
    opts.metrics_out = metrics_out;
    const SocketRunResult run = run_spmd_balancer_socket(trace, opts);
    report = run.report;
    if (!trace_out.empty())
      std::printf("merged trace: %s (%llu matched send->recv flows)\n",
                  trace_out.c_str(),
                  static_cast<unsigned long long>(run.matched_flow_pairs));
    if (!metrics_out.empty())
      std::printf("merged metrics: %s\n", metrics_out.c_str());
    for (int r = 0; r < n; ++r) {
      if (run.killed[static_cast<std::size_t>(r)])
        std::printf("rank %d killed by signal %d%s\n", r,
                    -run.exit_codes[static_cast<std::size_t>(r)],
                    run.restarted[static_cast<std::size_t>(r)]
                        ? "" : " (not restarted)");
      if (run.restarted[static_cast<std::size_t>(r)])
        std::printf("rank %d restarted: journal replay recovered load "
                    "%lld\n", r,
                    static_cast<long long>(
                        run.recovered_loads[static_cast<std::size_t>(r)]));
    }
  } else {
    World world(n);
    world.set_fault_plan(plan);
    report = run_spmd_balancer(world, trace, params);
  }

  TextTable table({"metric", "value"});
  const auto row = [&](const char* name, long long value) {
    table.row().cell(name).cell(value);
  };
  row("ranks", n);
  row("ranks dead", report.ranks_dead);
  row("final total load", report.total_load);
  row("final min load (live)", report.min_live_load);
  row("final max load (live)", report.max_live_load);
  row("balancing rounds initiated", report.rounds_initiated);
  row("packets shipped (p2p)", report.packets_shipped);
  row("messages dropped", static_cast<long long>(report.messages_dropped));
  row("messages duplicated",
      static_cast<long long>(report.messages_duplicated));
  row("recv timeouts", static_cast<long long>(report.recv_timeouts));
  row("degraded rounds", static_cast<long long>(report.degraded_rounds));
  row("transfer load declared lost", report.transfer_lost);
  row("crash load lost (journal drift)", report.crash_lost);
  table.print(std::cout);

  std::printf("\nconservation: %lld == %lld generated - %lld consumed - "
              "%lld declared lost  =>  %s\n",
              static_cast<long long>(report.total_load),
              static_cast<long long>(report.generated),
              static_cast<long long>(report.consumed),
              static_cast<long long>(report.transfer_lost +
                                     report.crash_lost),
              report.conserved ? "HOLDS" : "VIOLATED");
  std::cout << "Replicated-decision SPMD balancing: collectives carry "
               "the control plane, point-to-point messages carry the "
               "packets; faults degrade the imbalance, never the "
               "ledger.\n";
  return report.conserved ? 0 : 2;
}
