// The balancer as a real concurrent system: one thread per processor,
// mailbox message passing, three-message balancing transactions — the
// shape a distributed-memory implementation has, compressed onto one
// machine.
//
//   $ ./build/examples/threaded_runtime
//
// Demand is recorded into a trace first so the sequential reference
// simulator and the threaded runtime answer for exactly the same
// workload; the example prints both and checks conservation.
#include <iostream>

#include "core/system.hpp"
#include "metrics/imbalance.hpp"
#include "runtime/threaded_system.hpp"
#include "support/table.hpp"

int main() {
  using namespace dlb;

  const std::uint32_t processors = 8;
  const std::uint32_t steps = 400;

  // Record the demand once.
  Rng rng(11);
  const Workload wl =
      Workload::paper_benchmark(processors, steps, WorkloadParams{}, rng);
  Rng trace_rng(12);
  const Trace trace = Trace::record(wl, trace_rng);

  std::cout << "Same demand trace, two implementations of the balancing "
               "principle:\n\n";

  // 1. The threaded message-passing runtime.
  ThreadedConfig tc;
  tc.f = 1.2;
  tc.delta = 2;
  tc.seed = 13;
  ThreadedSystem threaded(processors, tc);
  threaded.run(trace);
  const ThreadedStats& ts = threaded.stats();

  // 2. The sequential reference simulator (with the full d/b ledger).
  BalancerConfig bc;
  bc.f = 1.2;
  bc.delta = 2;
  System sequential(processors, bc, 13);
  sequential.run(trace);
  sequential.check_invariants();

  std::int64_t threaded_total = 0;
  for (std::int64_t l : threaded.final_loads()) threaded_total += l;

  TextTable table({"metric", "threaded runtime", "sequential simulator"});
  table.row()
      .cell("generated")
      .cell(static_cast<unsigned long long>(ts.generated))
      .cell(static_cast<unsigned long long>(sequential.total_generated()));
  table.row()
      .cell("consumed")
      .cell(static_cast<unsigned long long>(ts.consumed))
      .cell(static_cast<unsigned long long>(sequential.total_consumed()));
  table.row()
      .cell("final total load")
      .cell(static_cast<long long>(threaded_total))
      .cell(static_cast<long long>(sequential.total_load()));
  table.row()
      .cell("balance operations")
      .cell(static_cast<unsigned long long>(ts.balance_ops))
      .cell(static_cast<unsigned long long>(
          sequential.balance_operations()));
  table.row()
      .cell("messages")
      .cell(static_cast<unsigned long long>(ts.messages))
      .cell(static_cast<unsigned long long>(
          sequential.costs().totals().messages));
  const auto r_thr = measure_imbalance(threaded.final_loads());
  const auto r_seq = measure_imbalance(sequential.loads());
  table.row()
      .cell("final max/avg imbalance")
      .cell(r_thr.max_over_avg, 3)
      .cell(r_seq.max_over_avg, 3);
  table.row()
      .cell("refused invitations")
      .cell(static_cast<unsigned long long>(ts.refusals))
      .cell("n/a (atomic ops)");
  table.print(std::cout);

  std::cout << "\nConservation holds in both: final load == generated - "
               "consumed.  The two disagree on exact loads (thread "
               "interleaving is nondeterministic) but agree on the "
               "balance quality.\n";
  return 0;
}
