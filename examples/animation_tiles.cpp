// Walkthrough-animation rendering on a simulated parallel machine — the
// graphics application of the paper's reference [11] (Menzel & Ohlemeyer,
// massively parallel walkthrough animation).
//
// A camera sweeps through a scene; each frame, the processors that own
// the on-screen region receive a burst of tile-rendering packets while
// the rest idle (the `wave` workload).  Without balancing, the busy
// region's processors queue up work while the others starve; with the
// paper's algorithm the packets spread and frame latency drops.
//
//   $ ./build/examples/animation_tiles
#include <algorithm>
#include <iostream>

#include "core/system.hpp"
#include "metrics/imbalance.hpp"
#include "metrics/recorder.hpp"
#include "support/table.hpp"

int main() {
  using namespace dlb;

  const std::uint32_t processors = 32;
  const std::uint32_t frames = 600;

  std::cout << "Walkthrough animation: a moving hot region of tile work "
               "on "
            << processors << " processors\n\n";

  // The wave workload: the generating ("on-screen") processor advances
  // every 15 steps; everyone else consumes rendered tiles.
  const Workload camera_sweep = Workload::wave(processors, frames, 15);

  TextTable table({"configuration", "max queue ever", "avg queue @end",
                   "CoV @end", "balance ops", "consume failures"});

  struct Cfg {
    const char* name;
    bool balance;
    double f;
    std::uint32_t delta;
  };
  for (const Cfg& cfg :
       {Cfg{"no balancing", false, 0, 0}, Cfg{"dlb f=1.8 d=1", true, 1.8, 1},
        Cfg{"dlb f=1.1 d=1", true, 1.1, 1},
        Cfg{"dlb f=1.1 d=4", true, 1.1, 4}}) {
    std::int64_t max_queue = 0;
    std::uint64_t failures = 0;
    std::uint64_t ops = 0;
    ImbalanceReport final_report;

    if (cfg.balance) {
      BalancerConfig bc;
      bc.f = cfg.f;
      bc.delta = cfg.delta;
      System sys(processors, bc, 5);
      LoadSeriesRecorder recorder(frames);
      sys.attach_recorder(&recorder);
      sys.run(camera_sweep);
      sys.check_invariants();
      for (std::uint32_t t = 0; t < frames; ++t)
        max_queue = std::max(
            max_queue, static_cast<std::int64_t>(recorder.series().max(t)));
      final_report = measure_imbalance(sys.loads());
      ops = sys.balance_operations();
    } else {
      // Null strategy: queue work where it is generated.
      std::vector<std::int64_t> loads(processors, 0);
      Rng rng(5);
      for (std::uint32_t t = 0; t < frames; ++t) {
        for (std::uint32_t p = 0; p < processors; ++p) {
          const WorkEvent ev = camera_sweep.sample(p, t, rng);
          if (ev.generate) loads[p] += 1;
          if (ev.consume) {
            if (loads[p] > 0)
              loads[p] -= 1;
            else
              ++failures;
          }
          max_queue = std::max(max_queue, loads[p]);
        }
      }
      final_report = measure_imbalance(loads);
    }

    table.row()
        .cell(cfg.name)
        .cell(static_cast<long long>(max_queue))
        .cell(final_report.avg_load, 1)
        .cell(final_report.cov, 3)
        .cell(static_cast<unsigned long long>(ops))
        .cell(static_cast<unsigned long long>(failures));
  }
  table.print(std::cout);
  std::cout << "\nBalancing flattens the moving hotspot: the worst queue "
               "depth (frame latency) drops and idle processors pick up "
               "tiles.\n";
  return 0;
}
