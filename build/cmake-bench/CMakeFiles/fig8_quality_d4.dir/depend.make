# Empty dependencies file for fig8_quality_d4.
# This may be replaced when dependencies are built.
