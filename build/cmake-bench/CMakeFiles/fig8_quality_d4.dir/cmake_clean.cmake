file(REMOVE_RECURSE
  "../bench/fig8_quality_d4"
  "../bench/fig8_quality_d4.pdb"
  "CMakeFiles/fig8_quality_d4.dir/fig8_quality_d4.cpp.o"
  "CMakeFiles/fig8_quality_d4.dir/fig8_quality_d4.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_quality_d4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
