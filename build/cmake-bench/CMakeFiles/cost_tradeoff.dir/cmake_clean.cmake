file(REMOVE_RECURSE
  "../bench/cost_tradeoff"
  "../bench/cost_tradeoff.pdb"
  "CMakeFiles/cost_tradeoff.dir/cost_tradeoff.cpp.o"
  "CMakeFiles/cost_tradeoff.dir/cost_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
