# Empty dependencies file for ablation_analysis_mode.
# This may be replaced when dependencies are built.
