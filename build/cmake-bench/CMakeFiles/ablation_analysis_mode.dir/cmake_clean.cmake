file(REMOVE_RECURSE
  "../bench/ablation_analysis_mode"
  "../bench/ablation_analysis_mode.pdb"
  "CMakeFiles/ablation_analysis_mode.dir/ablation_analysis_mode.cpp.o"
  "CMakeFiles/ablation_analysis_mode.dir/ablation_analysis_mode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_analysis_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
