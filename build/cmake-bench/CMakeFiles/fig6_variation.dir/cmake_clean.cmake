file(REMOVE_RECURSE
  "../bench/fig6_variation"
  "../bench/fig6_variation.pdb"
  "CMakeFiles/fig6_variation.dir/fig6_variation.cpp.o"
  "CMakeFiles/fig6_variation.dir/fig6_variation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
