# Empty dependencies file for fig6_variation.
# This may be replaced when dependencies are built.
