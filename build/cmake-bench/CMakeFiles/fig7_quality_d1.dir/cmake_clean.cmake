file(REMOVE_RECURSE
  "../bench/fig7_quality_d1"
  "../bench/fig7_quality_d1.pdb"
  "CMakeFiles/fig7_quality_d1.dir/fig7_quality_d1.cpp.o"
  "CMakeFiles/fig7_quality_d1.dir/fig7_quality_d1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_quality_d1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
