# Empty dependencies file for fig7_quality_d1.
# This may be replaced when dependencies are built.
