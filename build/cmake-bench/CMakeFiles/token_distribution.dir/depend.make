# Empty dependencies file for token_distribution.
# This may be replaced when dependencies are built.
