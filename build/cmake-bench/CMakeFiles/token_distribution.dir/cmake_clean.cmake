file(REMOVE_RECURSE
  "../bench/token_distribution"
  "../bench/token_distribution.pdb"
  "CMakeFiles/token_distribution.dir/token_distribution.cpp.o"
  "CMakeFiles/token_distribution.dir/token_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
