# Empty compiler generated dependencies file for theory_ratio_bound.
# This may be replaced when dependencies are built.
