file(REMOVE_RECURSE
  "../bench/theory_ratio_bound"
  "../bench/theory_ratio_bound.pdb"
  "CMakeFiles/theory_ratio_bound.dir/theory_ratio_bound.cpp.o"
  "CMakeFiles/theory_ratio_bound.dir/theory_ratio_bound.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_ratio_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
