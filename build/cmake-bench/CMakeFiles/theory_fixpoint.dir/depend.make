# Empty dependencies file for theory_fixpoint.
# This may be replaced when dependencies are built.
