file(REMOVE_RECURSE
  "../bench/theory_fixpoint"
  "../bench/theory_fixpoint.pdb"
  "CMakeFiles/theory_fixpoint.dir/theory_fixpoint.cpp.o"
  "CMakeFiles/theory_fixpoint.dir/theory_fixpoint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_fixpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
