file(REMOVE_RECURSE
  "../bench/fig9_distribution_d1"
  "../bench/fig9_distribution_d1.pdb"
  "CMakeFiles/fig9_distribution_d1.dir/fig9_distribution_d1.cpp.o"
  "CMakeFiles/fig9_distribution_d1.dir/fig9_distribution_d1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_distribution_d1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
