# Empty dependencies file for fig9_distribution_d1.
# This may be replaced when dependencies are built.
