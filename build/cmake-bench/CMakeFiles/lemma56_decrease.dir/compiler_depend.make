# Empty compiler generated dependencies file for lemma56_decrease.
# This may be replaced when dependencies are built.
