file(REMOVE_RECURSE
  "../bench/lemma56_decrease"
  "../bench/lemma56_decrease.pdb"
  "CMakeFiles/lemma56_decrease.dir/lemma56_decrease.cpp.o"
  "CMakeFiles/lemma56_decrease.dir/lemma56_decrease.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma56_decrease.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
