file(REMOVE_RECURSE
  "../bench/fig10_distribution_d4"
  "../bench/fig10_distribution_d4.pdb"
  "CMakeFiles/fig10_distribution_d4.dir/fig10_distribution_d4.cpp.o"
  "CMakeFiles/fig10_distribution_d4.dir/fig10_distribution_d4.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_distribution_d4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
