# Empty dependencies file for fig10_distribution_d4.
# This may be replaced when dependencies are built.
