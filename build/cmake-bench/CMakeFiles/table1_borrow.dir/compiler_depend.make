# Empty compiler generated dependencies file for table1_borrow.
# This may be replaced when dependencies are built.
