file(REMOVE_RECURSE
  "../bench/table1_borrow"
  "../bench/table1_borrow.pdb"
  "CMakeFiles/table1_borrow.dir/table1_borrow.cpp.o"
  "CMakeFiles/table1_borrow.dir/table1_borrow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_borrow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
