# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_simulate "/root/repo/build/tools/dlb" "simulate" "--processors=8" "--steps=50")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate_plot "/root/repo/build/tools/dlb" "simulate" "--processors=8" "--steps=50" "--plot" "--workload=hotspot")
set_tests_properties(cli_simulate_plot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_theory "/root/repo/build/tools/dlb" "theory" "--n=32" "--f=1.2" "--delta=2")
set_tests_properties(cli_theory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compare "/root/repo/build/tools/dlb" "compare" "--processors=8" "--steps=50")
set_tests_properties(cli_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_trace "/root/repo/build/tools/dlb" "trace" "--processors=4" "--steps=20")
set_tests_properties(cli_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_no_command "/root/repo/build/tools/dlb")
set_tests_properties(cli_no_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_workload "/root/repo/build/tools/dlb" "simulate" "--workload=nonsense" "--steps=10")
set_tests_properties(cli_bad_workload PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
