# Empty dependencies file for dlb_cli.
# This may be replaced when dependencies are built.
