file(REMOVE_RECURSE
  "CMakeFiles/dlb_cli.dir/dlb_cli.cpp.o"
  "CMakeFiles/dlb_cli.dir/dlb_cli.cpp.o.d"
  "dlb"
  "dlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
