# Empty compiler generated dependencies file for dlb_workload.
# This may be replaced when dependencies are built.
