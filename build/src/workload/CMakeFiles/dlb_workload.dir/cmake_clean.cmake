file(REMOVE_RECURSE
  "CMakeFiles/dlb_workload.dir/trace.cpp.o"
  "CMakeFiles/dlb_workload.dir/trace.cpp.o.d"
  "CMakeFiles/dlb_workload.dir/workload.cpp.o"
  "CMakeFiles/dlb_workload.dir/workload.cpp.o.d"
  "libdlb_workload.a"
  "libdlb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
