file(REMOVE_RECURSE
  "libdlb_workload.a"
)
