file(REMOVE_RECURSE
  "CMakeFiles/dlb_runtime.dir/threaded_system.cpp.o"
  "CMakeFiles/dlb_runtime.dir/threaded_system.cpp.o.d"
  "libdlb_runtime.a"
  "libdlb_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
