file(REMOVE_RECURSE
  "libdlb_core.a"
)
