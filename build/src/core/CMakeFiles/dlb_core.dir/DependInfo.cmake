
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/async_system.cpp" "src/core/CMakeFiles/dlb_core.dir/async_system.cpp.o" "gcc" "src/core/CMakeFiles/dlb_core.dir/async_system.cpp.o.d"
  "/root/repo/src/core/checkpoint.cpp" "src/core/CMakeFiles/dlb_core.dir/checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/dlb_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/dlb_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/dlb_core.dir/config.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/dlb_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/dlb_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/ledger.cpp" "src/core/CMakeFiles/dlb_core.dir/ledger.cpp.o" "gcc" "src/core/CMakeFiles/dlb_core.dir/ledger.cpp.o.d"
  "/root/repo/src/core/one_processor.cpp" "src/core/CMakeFiles/dlb_core.dir/one_processor.cpp.o" "gcc" "src/core/CMakeFiles/dlb_core.dir/one_processor.cpp.o.d"
  "/root/repo/src/core/snake.cpp" "src/core/CMakeFiles/dlb_core.dir/snake.cpp.o" "gcc" "src/core/CMakeFiles/dlb_core.dir/snake.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/dlb_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/dlb_core.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dlb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dlb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dlb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dlb_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
