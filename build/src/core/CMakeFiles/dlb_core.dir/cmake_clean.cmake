file(REMOVE_RECURSE
  "CMakeFiles/dlb_core.dir/async_system.cpp.o"
  "CMakeFiles/dlb_core.dir/async_system.cpp.o.d"
  "CMakeFiles/dlb_core.dir/checkpoint.cpp.o"
  "CMakeFiles/dlb_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/dlb_core.dir/config.cpp.o"
  "CMakeFiles/dlb_core.dir/config.cpp.o.d"
  "CMakeFiles/dlb_core.dir/experiment.cpp.o"
  "CMakeFiles/dlb_core.dir/experiment.cpp.o.d"
  "CMakeFiles/dlb_core.dir/ledger.cpp.o"
  "CMakeFiles/dlb_core.dir/ledger.cpp.o.d"
  "CMakeFiles/dlb_core.dir/one_processor.cpp.o"
  "CMakeFiles/dlb_core.dir/one_processor.cpp.o.d"
  "CMakeFiles/dlb_core.dir/snake.cpp.o"
  "CMakeFiles/dlb_core.dir/snake.cpp.o.d"
  "CMakeFiles/dlb_core.dir/system.cpp.o"
  "CMakeFiles/dlb_core.dir/system.cpp.o.d"
  "libdlb_core.a"
  "libdlb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
