# Empty dependencies file for dlb_support.
# This may be replaced when dependencies are built.
