# Empty compiler generated dependencies file for dlb_baselines.
# This may be replaced when dependencies are built.
