
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/adapter.cpp" "src/baselines/CMakeFiles/dlb_baselines.dir/adapter.cpp.o" "gcc" "src/baselines/CMakeFiles/dlb_baselines.dir/adapter.cpp.o.d"
  "/root/repo/src/baselines/balancer.cpp" "src/baselines/CMakeFiles/dlb_baselines.dir/balancer.cpp.o" "gcc" "src/baselines/CMakeFiles/dlb_baselines.dir/balancer.cpp.o.d"
  "/root/repo/src/baselines/diffusion.cpp" "src/baselines/CMakeFiles/dlb_baselines.dir/diffusion.cpp.o" "gcc" "src/baselines/CMakeFiles/dlb_baselines.dir/diffusion.cpp.o.d"
  "/root/repo/src/baselines/dimension_exchange.cpp" "src/baselines/CMakeFiles/dlb_baselines.dir/dimension_exchange.cpp.o" "gcc" "src/baselines/CMakeFiles/dlb_baselines.dir/dimension_exchange.cpp.o.d"
  "/root/repo/src/baselines/gradient.cpp" "src/baselines/CMakeFiles/dlb_baselines.dir/gradient.cpp.o" "gcc" "src/baselines/CMakeFiles/dlb_baselines.dir/gradient.cpp.o.d"
  "/root/repo/src/baselines/rsu.cpp" "src/baselines/CMakeFiles/dlb_baselines.dir/rsu.cpp.o" "gcc" "src/baselines/CMakeFiles/dlb_baselines.dir/rsu.cpp.o.d"
  "/root/repo/src/baselines/simple.cpp" "src/baselines/CMakeFiles/dlb_baselines.dir/simple.cpp.o" "gcc" "src/baselines/CMakeFiles/dlb_baselines.dir/simple.cpp.o.d"
  "/root/repo/src/baselines/stealing.cpp" "src/baselines/CMakeFiles/dlb_baselines.dir/stealing.cpp.o" "gcc" "src/baselines/CMakeFiles/dlb_baselines.dir/stealing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dlb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dlb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dlb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dlb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dlb_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
