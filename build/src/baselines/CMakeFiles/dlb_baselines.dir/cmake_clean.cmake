file(REMOVE_RECURSE
  "CMakeFiles/dlb_baselines.dir/adapter.cpp.o"
  "CMakeFiles/dlb_baselines.dir/adapter.cpp.o.d"
  "CMakeFiles/dlb_baselines.dir/balancer.cpp.o"
  "CMakeFiles/dlb_baselines.dir/balancer.cpp.o.d"
  "CMakeFiles/dlb_baselines.dir/diffusion.cpp.o"
  "CMakeFiles/dlb_baselines.dir/diffusion.cpp.o.d"
  "CMakeFiles/dlb_baselines.dir/dimension_exchange.cpp.o"
  "CMakeFiles/dlb_baselines.dir/dimension_exchange.cpp.o.d"
  "CMakeFiles/dlb_baselines.dir/gradient.cpp.o"
  "CMakeFiles/dlb_baselines.dir/gradient.cpp.o.d"
  "CMakeFiles/dlb_baselines.dir/rsu.cpp.o"
  "CMakeFiles/dlb_baselines.dir/rsu.cpp.o.d"
  "CMakeFiles/dlb_baselines.dir/simple.cpp.o"
  "CMakeFiles/dlb_baselines.dir/simple.cpp.o.d"
  "CMakeFiles/dlb_baselines.dir/stealing.cpp.o"
  "CMakeFiles/dlb_baselines.dir/stealing.cpp.o.d"
  "libdlb_baselines.a"
  "libdlb_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
