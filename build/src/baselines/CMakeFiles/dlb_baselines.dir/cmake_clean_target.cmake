file(REMOVE_RECURSE
  "libdlb_baselines.a"
)
