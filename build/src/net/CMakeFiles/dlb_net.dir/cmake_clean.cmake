file(REMOVE_RECURSE
  "CMakeFiles/dlb_net.dir/cost_model.cpp.o"
  "CMakeFiles/dlb_net.dir/cost_model.cpp.o.d"
  "CMakeFiles/dlb_net.dir/topology.cpp.o"
  "CMakeFiles/dlb_net.dir/topology.cpp.o.d"
  "libdlb_net.a"
  "libdlb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
