# Empty compiler generated dependencies file for dlb_net.
# This may be replaced when dependencies are built.
