file(REMOVE_RECURSE
  "libdlb_metrics.a"
)
