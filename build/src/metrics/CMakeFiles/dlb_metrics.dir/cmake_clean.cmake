file(REMOVE_RECURSE
  "CMakeFiles/dlb_metrics.dir/imbalance.cpp.o"
  "CMakeFiles/dlb_metrics.dir/imbalance.cpp.o.d"
  "CMakeFiles/dlb_metrics.dir/recorder.cpp.o"
  "CMakeFiles/dlb_metrics.dir/recorder.cpp.o.d"
  "libdlb_metrics.a"
  "libdlb_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
