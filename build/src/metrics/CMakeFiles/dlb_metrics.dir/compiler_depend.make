# Empty compiler generated dependencies file for dlb_metrics.
# This may be replaced when dependencies are built.
