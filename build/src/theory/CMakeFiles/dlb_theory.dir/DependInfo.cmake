
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/theory/bounds.cpp" "src/theory/CMakeFiles/dlb_theory.dir/bounds.cpp.o" "gcc" "src/theory/CMakeFiles/dlb_theory.dir/bounds.cpp.o.d"
  "/root/repo/src/theory/computation_graph.cpp" "src/theory/CMakeFiles/dlb_theory.dir/computation_graph.cpp.o" "gcc" "src/theory/CMakeFiles/dlb_theory.dir/computation_graph.cpp.o.d"
  "/root/repo/src/theory/operators.cpp" "src/theory/CMakeFiles/dlb_theory.dir/operators.cpp.o" "gcc" "src/theory/CMakeFiles/dlb_theory.dir/operators.cpp.o.d"
  "/root/repo/src/theory/variation.cpp" "src/theory/CMakeFiles/dlb_theory.dir/variation.cpp.o" "gcc" "src/theory/CMakeFiles/dlb_theory.dir/variation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dlb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dlb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dlb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dlb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dlb_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
