file(REMOVE_RECURSE
  "libdlb_theory.a"
)
