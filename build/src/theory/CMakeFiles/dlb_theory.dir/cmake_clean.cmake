file(REMOVE_RECURSE
  "CMakeFiles/dlb_theory.dir/bounds.cpp.o"
  "CMakeFiles/dlb_theory.dir/bounds.cpp.o.d"
  "CMakeFiles/dlb_theory.dir/computation_graph.cpp.o"
  "CMakeFiles/dlb_theory.dir/computation_graph.cpp.o.d"
  "CMakeFiles/dlb_theory.dir/operators.cpp.o"
  "CMakeFiles/dlb_theory.dir/operators.cpp.o.d"
  "CMakeFiles/dlb_theory.dir/variation.cpp.o"
  "CMakeFiles/dlb_theory.dir/variation.cpp.o.d"
  "libdlb_theory.a"
  "libdlb_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
