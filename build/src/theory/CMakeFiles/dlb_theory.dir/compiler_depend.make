# Empty compiler generated dependencies file for dlb_theory.
# This may be replaced when dependencies are built.
