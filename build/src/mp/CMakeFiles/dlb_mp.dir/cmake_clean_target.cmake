file(REMOVE_RECURSE
  "libdlb_mp.a"
)
