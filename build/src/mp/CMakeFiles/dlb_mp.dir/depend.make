# Empty dependencies file for dlb_mp.
# This may be replaced when dependencies are built.
