file(REMOVE_RECURSE
  "CMakeFiles/dlb_mp.dir/communicator.cpp.o"
  "CMakeFiles/dlb_mp.dir/communicator.cpp.o.d"
  "libdlb_mp.a"
  "libdlb_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlb_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
