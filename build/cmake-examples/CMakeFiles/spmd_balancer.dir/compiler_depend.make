# Empty compiler generated dependencies file for spmd_balancer.
# This may be replaced when dependencies are built.
