file(REMOVE_RECURSE
  "../examples/spmd_balancer"
  "../examples/spmd_balancer.pdb"
  "CMakeFiles/spmd_balancer.dir/spmd_balancer.cpp.o"
  "CMakeFiles/spmd_balancer.dir/spmd_balancer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmd_balancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
