file(REMOVE_RECURSE
  "../examples/animation_tiles"
  "../examples/animation_tiles.pdb"
  "CMakeFiles/animation_tiles.dir/animation_tiles.cpp.o"
  "CMakeFiles/animation_tiles.dir/animation_tiles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animation_tiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
