# Empty compiler generated dependencies file for animation_tiles.
# This may be replaced when dependencies are built.
