file(REMOVE_RECURSE
  "../examples/threaded_runtime"
  "../examples/threaded_runtime.pdb"
  "CMakeFiles/threaded_runtime.dir/threaded_runtime.cpp.o"
  "CMakeFiles/threaded_runtime.dir/threaded_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
