file(REMOVE_RECURSE
  "../examples/branch_and_bound"
  "../examples/branch_and_bound.pdb"
  "CMakeFiles/branch_and_bound.dir/branch_and_bound.cpp.o"
  "CMakeFiles/branch_and_bound.dir/branch_and_bound.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_and_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
