# Empty compiler generated dependencies file for task_tree.
# This may be replaced when dependencies are built.
