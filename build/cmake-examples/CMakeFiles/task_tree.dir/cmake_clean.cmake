file(REMOVE_RECURSE
  "../examples/task_tree"
  "../examples/task_tree.pdb"
  "CMakeFiles/task_tree.dir/task_tree.cpp.o"
  "CMakeFiles/task_tree.dir/task_tree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
