
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload/trace_test.cpp" "tests/CMakeFiles/workload_tests.dir/workload/trace_test.cpp.o" "gcc" "tests/CMakeFiles/workload_tests.dir/workload/trace_test.cpp.o.d"
  "/root/repo/tests/workload/workload_test.cpp" "tests/CMakeFiles/workload_tests.dir/workload/workload_test.cpp.o" "gcc" "tests/CMakeFiles/workload_tests.dir/workload/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/theory/CMakeFiles/dlb_theory.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dlb_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dlb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dlb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dlb_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dlb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dlb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/dlb_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dlb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
