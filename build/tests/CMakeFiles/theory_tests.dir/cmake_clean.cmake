file(REMOVE_RECURSE
  "CMakeFiles/theory_tests.dir/theory/bounds_test.cpp.o"
  "CMakeFiles/theory_tests.dir/theory/bounds_test.cpp.o.d"
  "CMakeFiles/theory_tests.dir/theory/computation_graph_test.cpp.o"
  "CMakeFiles/theory_tests.dir/theory/computation_graph_test.cpp.o.d"
  "CMakeFiles/theory_tests.dir/theory/operators_test.cpp.o"
  "CMakeFiles/theory_tests.dir/theory/operators_test.cpp.o.d"
  "CMakeFiles/theory_tests.dir/theory/variation_test.cpp.o"
  "CMakeFiles/theory_tests.dir/theory/variation_test.cpp.o.d"
  "theory_tests"
  "theory_tests.pdb"
  "theory_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
