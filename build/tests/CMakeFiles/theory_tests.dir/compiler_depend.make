# Empty compiler generated dependencies file for theory_tests.
# This may be replaced when dependencies are built.
