file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/async_system_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/async_system_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/borrow_protocol_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/borrow_protocol_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/checkpoint_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/checkpoint_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/config_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/config_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/experiment_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/experiment_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/item_system_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/item_system_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/ledger_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/ledger_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/one_processor_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/one_processor_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/snake_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/snake_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/system_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/system_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
