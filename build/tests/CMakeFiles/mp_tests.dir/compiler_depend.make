# Empty compiler generated dependencies file for mp_tests.
# This may be replaced when dependencies are built.
