file(REMOVE_RECURSE
  "CMakeFiles/mp_tests.dir/mp/communicator_test.cpp.o"
  "CMakeFiles/mp_tests.dir/mp/communicator_test.cpp.o.d"
  "mp_tests"
  "mp_tests.pdb"
  "mp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
